//! Sharded-fleet behaviour tests: the seeded multi-threaded equivalence
//! proof (sharded scoring is report-identical to the unsharded fleet and to
//! direct `detect_batch`, modulo replica attribution), routing-policy
//! behaviour, lock-stepped deploy/rollback fan-out, and the flush-policy
//! edge interactions the sharding layer introduces.

use hmd_core::detector::{
    load, save, Detector, DetectorBackend, DetectorConfig, DetectorExt, MonitorSession,
    MonitorStats,
};
use hmd_data::{Dataset, Label, Matrix};
use hmd_serve::{DetectorFleet, FleetError, FlushPolicy, RoutePolicy, ShardConfig, ShardedFleet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn blobs(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..n {
        let malware = rng.gen_bool(0.5);
        let c = if malware { 2.0 } else { -2.0 };
        rows.push(
            (0..features)
                .map(|f| {
                    if f < 2 {
                        c + rng.gen_range(-0.8..0.8)
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect(),
        );
        labels.push(Label::from(malware));
    }
    Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
}

/// A matrix of scoring requests straddling both blobs and the space between,
/// so reports mix confident accepts with escalations.
fn request_matrix(rows: usize, features: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * features)
        .map(|_| rng.gen_range(-3.0..3.0))
        .collect();
    Matrix::from_vec(rows, features, data).unwrap()
}

fn trained(num_estimators: usize, seed: u64) -> Box<dyn Detector> {
    DetectorConfig::trusted(DetectorBackend::random_forest())
        .with_num_estimators(num_estimators)
        .with_entropy_threshold(0.4)
        .fit(&blobs(140, 4, 11), seed)
        .expect("training succeeds")
}

fn assert_reports_bit_identical(
    a: &hmd_core::trusted::DetectionReport,
    b: &hmd_core::trusted::DetectionReport,
    context: &str,
) {
    assert_eq!(
        a.prediction.entropy.to_bits(),
        b.prediction.entropy.to_bits(),
        "{context}: entropy"
    );
    assert_eq!(
        a.prediction.malware_vote_fraction.to_bits(),
        b.prediction.malware_vote_fraction.to_bits(),
        "{context}: vote fraction"
    );
    assert_eq!(a, b, "{context}");
}

/// Finds one key per replica: `keys[r]` routes to replica `r` under key
/// affinity. Probing is deterministic (the key hash is a pure function).
fn keys_per_replica(fleet: &ShardedFleet, name: &str, replicas: usize) -> Vec<u64> {
    let mut keys = vec![None; replicas];
    let mut found = 0;
    for key in 0..10_000u64 {
        let ticket = fleet.score_keyed(name, key, &[0.0, 0.0, 0.0, 0.0]).unwrap();
        let replica = ticket.replica();
        // Resolve the probe so it does not linger in a tile.
        fleet.flush(name).unwrap();
        ticket.wait().unwrap();
        if keys[replica].is_none() {
            keys[replica] = Some(key);
            found += 1;
            if found == replicas {
                break;
            }
        }
    }
    fleet.reset_stats(name).unwrap();
    keys.into_iter()
        .map(|k| k.expect("every replica is reachable by some key"))
        .collect()
}

/// The acceptance-criteria test: interleaved single-row `score()` calls from
/// multiple threads through a 3-shard fleet produce reports bit-identical to
/// one direct `detect_batch` — and to the unsharded `DetectorFleet` serving
/// the same model — modulo which replica is attributed. Tile size 7
/// deliberately misaligns with the request count and the thread
/// interleaving, so replica tiles mix rows from every thread.
#[test]
fn sharded_multithreaded_scoring_is_report_identical_to_unsharded() {
    let detector = trained(15, 21);
    let requests = request_matrix(173, 4, 22);
    let direct = detector.detect_batch(&requests).expect("direct batch");

    // The unsharded reference fleet serves a codec clone of the detector.
    let unsharded = DetectorFleet::with_policy(FlushPolicy::new(7, Duration::from_millis(20)));
    unsharded.deploy(
        "hmd",
        load(&save(detector.as_ref()).expect("persistable")).expect("loads"),
    );
    let unsharded_reports = unsharded.score_batch("hmd", &requests).expect("unsharded");

    let sharded = Arc::new(ShardedFleet::with_config(
        ShardConfig::new(3).with_flush(FlushPolicy::new(7, Duration::from_millis(20))),
    ));
    sharded
        .deploy(
            "hmd",
            load(&save(detector.as_ref()).expect("persistable")).expect("loads"),
        )
        .expect("replicates");
    assert_eq!(sharded.replicas("hmd").unwrap(), 3);

    let threads = 4;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let fleet = Arc::clone(&sharded);
            let requests = requests.clone();
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for row in (t..requests.rows()).step_by(threads) {
                    let ticket = fleet.score("hmd", requests.row(row)).expect("enqueue");
                    results.push((row, ticket.wait().expect("scores")));
                }
                results
            })
        })
        .collect();

    let mut replicas_used = vec![0usize; 3];
    let mut by_row = vec![None; requests.rows()];
    for handle in handles {
        for (row, report) in handle.join().expect("thread completes") {
            assert!(
                by_row[row].replace(report).is_none(),
                "row {row} scored once"
            );
        }
    }
    for (row, scored) in by_row.iter().enumerate() {
        let scored = scored.as_ref().expect("every row scored");
        assert_eq!(scored.version, 1, "replica versions are lock-stepped");
        assert!(scored.replica < 3);
        replicas_used[scored.replica] += 1;
        assert_reports_bit_identical(
            &scored.report,
            &direct[row],
            &format!("row {row} vs direct"),
        );
        assert_reports_bit_identical(
            &scored.report,
            &unsharded_reports[row].report,
            &format!("row {row} vs unsharded fleet"),
        );
    }
    assert!(
        replicas_used.iter().all(|&n| n > 0),
        "round-robin spreads across every replica: {replicas_used:?}"
    );

    // Merged per-replica stats equal one session fed every report: counters
    // and extremes exactly; the mean is an f64 sum whose value depends on
    // merge order, so it gets a tolerance.
    let mut session = MonitorSession::new(detector.as_ref());
    session.observe_batch(&requests).expect("session batch");
    let merged = sharded.stats("hmd").expect("stats");
    assert_eq!(merged.windows, session.stats().windows);
    assert_eq!(merged.accepted, session.stats().accepted);
    assert_eq!(merged.escalated, session.stats().escalated);
    assert_eq!(merged.accepted_malware, session.stats().accepted_malware);
    assert_eq!(merged.accepted_benign, session.stats().accepted_benign);
    assert_eq!(
        merged.min_entropy.to_bits(),
        session.stats().min_entropy.to_bits()
    );
    assert_eq!(
        merged.max_entropy.to_bits(),
        session.stats().max_entropy.to_bits()
    );
    assert!((merged.mean_entropy() - session.stats().mean_entropy()).abs() < 1e-12);

    // The per-replica view decomposes the merged one.
    let per_replica = sharded.replica_stats("hmd").expect("replica stats");
    assert_eq!(per_replica.len(), 3);
    assert_eq!(
        per_replica.iter().map(|s| s.windows).sum::<usize>(),
        merged.windows
    );
    for (replica, stats) in per_replica.iter().enumerate() {
        assert_eq!(stats.windows, replicas_used[replica]);
    }
}

/// Key affinity pins every request of a session to one replica, so a
/// session's burst micro-batches together; distinct keys spread out.
#[test]
fn key_affinity_pins_sessions_and_spreads_keys() {
    let fleet = ShardedFleet::with_config(
        ShardConfig::new(4)
            .with_policy(RoutePolicy::KeyAffinity)
            .with_flush(FlushPolicy::new(64, Duration::from_millis(50))),
    );
    let detector = trained(9, 41);
    let requests = request_matrix(12, 4, 42);
    let direct = detector.detect_batch(&requests).expect("direct");
    fleet.deploy("hmd", detector).expect("deploys");

    let mut replicas_seen = std::collections::HashSet::new();
    for session in 0..16u64 {
        let tickets: Vec<_> = (0..requests.rows())
            .map(|row| {
                fleet
                    .score_keyed("hmd", session, requests.row(row))
                    .expect("enqueue")
            })
            .collect();
        fleet.flush("hmd").expect("flush");
        let mut session_replicas = std::collections::HashSet::new();
        for (row, ticket) in tickets.into_iter().enumerate() {
            let scored = ticket.wait().expect("scores");
            session_replicas.insert(scored.replica);
            assert_reports_bit_identical(&scored.report, &direct[row], "keyed row");
        }
        assert_eq!(
            session_replicas.len(),
            1,
            "session {session} must stick to one replica"
        );
        replicas_seen.extend(session_replicas);
    }
    assert!(
        replicas_seen.len() >= 3,
        "16 sessions should spread over most of 4 replicas, got {replicas_seen:?}"
    );
}

/// The least-loaded router reads open-tile depths and picks the emptiest
/// replica (ties to the lowest index). Driven deterministically from one
/// thread via keyed preloads.
#[test]
fn least_loaded_routes_to_the_emptiest_replica() {
    let fleet = ShardedFleet::with_config(
        ShardConfig::new(3)
            .with_policy(RoutePolicy::LeastLoaded)
            .with_flush(FlushPolicy::new(64, Duration::from_secs(5))),
    );
    fleet.deploy("hmd", trained(5, 51)).expect("deploys");
    let keys = keys_per_replica(&fleet, "hmd", 3);
    let row = [0.1, -0.2, 0.3, -0.4];

    // Preload: 3 rows on replica 0, 1 row on replica 1, replica 2 empty.
    let mut pending = Vec::new();
    for _ in 0..3 {
        pending.push(fleet.score_keyed("hmd", keys[0], &row).expect("preload"));
    }
    pending.push(fleet.score_keyed("hmd", keys[1], &row).expect("preload"));
    assert_eq!(fleet.pending_depths("hmd").unwrap(), vec![3, 1, 0]);

    // Keyless scoring under LeastLoaded goes to the empty replica 2; after
    // that, depths are [3, 1, 1] and the tie between 1 and 2 goes to the
    // lower index.
    let a = fleet.score("hmd", &row).expect("routes");
    assert_eq!(a.replica(), 2);
    let b = fleet.score("hmd", &row).expect("routes");
    assert_eq!(b.replica(), 1, "tie at depth 1 goes to the lowest index");
    assert_eq!(fleet.pending_depths("hmd").unwrap(), vec![3, 2, 1]);
    let c = fleet.score("hmd", &row).expect("routes");
    assert_eq!(c.replica(), 2, "replica 2 is emptiest again");
    assert_eq!(fleet.pending_depths("hmd").unwrap(), vec![3, 2, 2]);

    pending.extend([a, b, c]);
    assert_eq!(fleet.flush("hmd").unwrap(), 7);
    for ticket in pending {
        ticket.wait().expect("scores");
    }
    assert_eq!(fleet.stats("hmd").unwrap().windows, 7);
}

/// Deploy and rollback fan out to every replica in lock-step: version
/// stamps stay globally consistent no matter which replica serves, and
/// rolled-back traffic reverts to bit-identical v1 behaviour on all shards.
#[test]
fn deploy_rollback_fan_out_with_consistent_versions() {
    let v1 = trained(9, 61);
    let v2 = trained(15, 62); // different ensemble size => different reports
    let requests = request_matrix(30, 4, 63);
    let direct_v1 = v1.detect_batch(&requests).expect("v1 direct");
    let direct_v2 = v2.detect_batch(&requests).expect("v2 direct");

    let fleet = ShardedFleet::new(3);
    assert_eq!(fleet.deploy("hmd", v1).expect("v1 deploys"), 1);
    assert_eq!(fleet.active_version("hmd").unwrap(), 1);

    // Score through every replica (round robin) on v1.
    for (row, direct) in direct_v1.iter().enumerate() {
        let scored = fleet
            .score("hmd", requests.row(row))
            .and_then(|t| {
                fleet.flush("hmd")?;
                t.wait()
            })
            .expect("scores");
        assert_eq!(scored.version, 1);
        assert_reports_bit_identical(&scored.report, direct, "v1 row");
    }

    assert_eq!(fleet.deploy("hmd", v2).expect("v2 deploys"), 2);
    assert_eq!(fleet.active_version("hmd").unwrap(), 2);
    assert!(fleet.detector_name("hmd").unwrap().contains("15x"));
    let scored = fleet.score_batch("hmd", &requests).expect("v2 batch");
    for (row, s) in scored.iter().enumerate() {
        assert_eq!(s.version, 2);
        assert_reports_bit_identical(&s.report, &direct_v2[row], "v2 row");
    }

    assert_eq!(fleet.rollback("hmd").expect("rolls back"), 1);
    assert_eq!(fleet.active_version("hmd").unwrap(), 1);
    let scored = fleet.score_batch("hmd", &requests).expect("rolled back");
    for (row, s) in scored.iter().enumerate() {
        assert_eq!(s.version, 1);
        assert_reports_bit_identical(&s.report, &direct_v1[row], "rolled-back row");
    }
    assert_eq!(
        fleet.rollback("hmd").unwrap_err(),
        FleetError::NoPreviousVersion { name: "hmd".into() }
    );
}

/// Flush-policy edge under sharding: one replica's tile drains inline at
/// `max_batch` while a lone request on a sibling replica must ride out the
/// full `max_wait` deadline — the replicas' deadlines are independent.
/// Single-threaded and fully deterministic.
#[test]
fn max_wait_fires_on_one_replica_while_another_drains_at_max_batch() {
    let max_wait = Duration::from_millis(40);
    let fleet = ShardedFleet::with_config(
        ShardConfig::new(2)
            .with_policy(RoutePolicy::KeyAffinity)
            .with_flush(FlushPolicy::new(4, max_wait)),
    );
    let detector = trained(7, 71);
    let requests = request_matrix(5, 4, 72);
    let direct = detector.detect_batch(&requests).expect("direct");
    fleet.deploy("hmd", detector).expect("deploys");
    let keys = keys_per_replica(&fleet, "hmd", 2);

    // Replica 0: exactly max_batch rows — the 4th enqueue drains inline.
    let busy: Vec<_> = (0..4)
        .map(|row| {
            fleet
                .score_keyed("hmd", keys[0], requests.row(row))
                .expect("enqueue")
        })
        .collect();
    assert_eq!(
        fleet.replica_stats("hmd").unwrap()[0].windows,
        4,
        "replica 0 drained at max_batch without any flush call"
    );
    for (row, ticket) in busy.into_iter().enumerate() {
        let scored = ticket.try_wait().expect("already drained").expect("scores");
        assert_eq!(scored.replica, 0);
        assert_reports_bit_identical(&scored.report, &direct[row], "max_batch row");
    }

    // Replica 1: one lone row. Nothing else arrives, so its own `wait()`
    // must flush it at the deadline — replica 0's inline drain did not
    // satisfy (or reset) replica 1's clock.
    let start = Instant::now();
    let lonely = fleet
        .score_keyed("hmd", keys[1], requests.row(4))
        .expect("enqueue");
    assert_eq!(lonely.replica(), 1);
    let scored = lonely.wait().expect("deadline flush scores");
    assert!(
        start.elapsed() >= max_wait,
        "the lone request cannot resolve before its replica's deadline"
    );
    assert_reports_bit_identical(&scored.report, &direct[4], "max_wait row");
    let per_replica = fleet.replica_stats("hmd").unwrap();
    assert_eq!(per_replica[0].windows, 4);
    assert_eq!(per_replica[1].windows, 1);
}

/// Rollback racing an in-flight tile: rows enqueued before the rollback
/// finish on the version that accepted them (the rollback's fan-out flush
/// drains the tile on its captured version), while traffic after the
/// rollback scores on the restored version. Seeded and deterministic: the
/// race is driven from one thread via explicit enqueue/rollback ordering,
/// plus a threaded variant streaming rows while the rollback lands.
#[test]
fn rollback_racing_an_in_flight_tile_keeps_attribution() {
    let v1 = trained(7, 81);
    let v2 = trained(11, 82);
    let requests = request_matrix(60, 4, 83);
    let direct_v1 = v1.detect_batch(&requests).expect("v1 direct");
    let direct_v2 = v2.detect_batch(&requests).expect("v2 direct");

    // Deterministic interleaving first: open a tile on v2, then roll back.
    let fleet = Arc::new(ShardedFleet::with_config(
        ShardConfig::new(2).with_flush(FlushPolicy::new(8, Duration::from_secs(5))),
    ));
    fleet.deploy("hmd", v1).expect("v1");
    fleet.deploy("hmd", v2).expect("v2");
    let in_flight: Vec<_> = (0..3)
        .map(|row| fleet.score("hmd", requests.row(row)).expect("enqueue"))
        .collect();
    assert_eq!(fleet.rollback("hmd").expect("rolls back"), 1);
    for (row, ticket) in in_flight.into_iter().enumerate() {
        let scored = ticket
            .try_wait()
            .expect("rollback flushed it")
            .expect("scores");
        assert_eq!(scored.version, 2, "in-flight tile finishes on v2");
        assert_reports_bit_identical(&scored.report, &direct_v2[row], "in-flight row");
    }
    let after = fleet.score_batch("hmd", &requests).expect("post-rollback");
    for (row, s) in after.iter().enumerate() {
        assert_eq!(s.version, 1);
        assert_reports_bit_identical(&s.report, &direct_v1[row], "post-rollback row");
    }

    // Threaded variant: a scorer streams every row while the main thread
    // rolls back mid-stream. Every report must be attributable to exactly
    // the version whose direct output it matches.
    let fleet = Arc::new(ShardedFleet::with_config(
        ShardConfig::new(2).with_flush(FlushPolicy::new(5, Duration::from_millis(10))),
    ));
    fleet.deploy("hmd", trained(7, 81)).expect("v1 again");
    fleet.deploy("hmd", trained(11, 82)).expect("v2 again");
    let scorer = {
        let fleet = Arc::clone(&fleet);
        let requests = requests.clone();
        std::thread::spawn(move || {
            let mut results = Vec::new();
            for row in 0..requests.rows() {
                let ticket = fleet.score("hmd", requests.row(row)).expect("enqueue");
                results.push((row, ticket.wait().expect("scores")));
            }
            results
        })
    };
    std::thread::sleep(Duration::from_millis(2));
    assert_eq!(fleet.rollback("hmd").expect("mid-stream rollback"), 1);
    for (row, scored) in scorer.join().expect("scorer completes") {
        match scored.version {
            2 => assert_reports_bit_identical(&scored.report, &direct_v2[row], "pre-rollback"),
            1 => assert_reports_bit_identical(&scored.report, &direct_v1[row], "post-rollback"),
            other => panic!("unexpected version {other}"),
        }
    }
}

/// Unknown endpoints error uniformly across the whole sharded surface, and
/// a 1-replica sharded fleet degenerates to DetectorFleet behaviour.
#[test]
fn unknown_endpoints_and_single_replica_degeneration() {
    let fleet = ShardedFleet::new(2);
    let missing = FleetError::UnknownEndpoint {
        name: "ghost".into(),
    };
    assert_eq!(fleet.score("ghost", &[0.0]).unwrap_err(), missing);
    assert_eq!(fleet.score_keyed("ghost", 1, &[0.0]).unwrap_err(), missing);
    assert_eq!(fleet.flush("ghost").unwrap_err(), missing);
    assert_eq!(fleet.stats("ghost").unwrap_err(), missing);
    assert_eq!(fleet.replica_stats("ghost").unwrap_err(), missing);
    assert_eq!(fleet.pending_depths("ghost").unwrap_err(), missing);
    assert_eq!(fleet.rollback("ghost").unwrap_err(), missing);
    assert_eq!(fleet.active_version("ghost").unwrap_err(), missing);
    assert_eq!(fleet.replicas("ghost").unwrap_err(), missing);
    assert!(fleet.endpoints().is_empty());

    // One replica: no codec clone, same reports as the unsharded fleet.
    let single = ShardedFleet::new(1);
    let detector = trained(5, 91);
    let requests = request_matrix(9, 4, 92);
    let direct = detector.detect_batch(&requests).expect("direct");
    single.deploy("hmd", detector).expect("deploys");
    let scored = single.score_batch("hmd", &requests).expect("scores");
    for (row, s) in scored.iter().enumerate() {
        assert_eq!((s.replica, s.version), (0, 1));
        assert_reports_bit_identical(&s.report, &direct[row], "single-replica row");
    }
}

/// Shadow challengers across shards: the challenger scores the same served
/// tiles on every replica without perturbing served reports or champion
/// stats, `shadow_stats` merges replica-local shadow monitors, and
/// `promote_shadow` publishes the challenger to every replica in lock-step
/// (with `rollback` restoring the old champion afterwards).
#[test]
fn sharded_shadow_merges_stats_and_promotes_in_lock_step() {
    let champion = trained(7, 101);
    let challenger = trained(11, 102);
    let challenger_copy = load(&save(challenger.as_ref()).expect("saves")).expect("loads");
    let requests = request_matrix(24, 4, 103);
    let direct_champion = champion.detect_batch(&requests).expect("direct champion");
    let direct_challenger = challenger_copy
        .detect_batch(&requests)
        .expect("direct challenger");

    let fleet = ShardedFleet::with_config(
        ShardConfig::new(3).with_flush(FlushPolicy::new(4, Duration::from_secs(5))),
    );
    fleet.deploy("hmd", champion).expect("deploys");
    assert_eq!(
        fleet.promote_shadow("hmd").unwrap_err(),
        FleetError::NoShadow { name: "hmd".into() }
    );
    assert!(fleet.shadow_stats("hmd").expect("queries").is_none());

    fleet.deploy_shadow("hmd", challenger).expect("shadows");
    let scored = fleet.score_batch("hmd", &requests).expect("scores");
    for (row, s) in scored.iter().enumerate() {
        assert_eq!(s.version, 1);
        assert_reports_bit_identical(&s.report, &direct_champion[row], "shadowed row");
    }

    // Shadow saw exactly the served rows, split across replicas; the merged
    // snapshot matches a session that scored the same rows directly.
    let shadow = fleet
        .shadow_stats("hmd")
        .expect("queries")
        .expect("present");
    assert_eq!((shadow.rows, shadow.errors), (24, 0));
    let mut expected = MonitorStats::default();
    for report in &direct_challenger {
        expected.record(report);
    }
    assert_eq!(shadow.stats, expected);
    // Champion stats are untouched by the shadow pass.
    assert_eq!(fleet.stats("hmd").expect("stats").windows, 24);

    // Promotion fans out in lock-step: every replica serves the challenger.
    assert_eq!(fleet.promote_shadow("hmd").expect("promotes"), 2);
    assert!(fleet.shadow_stats("hmd").expect("queries").is_none());
    assert_eq!(fleet.active_version("hmd").expect("version"), 2);
    let scored = fleet.score_batch("hmd", &requests).expect("scores");
    for (row, s) in scored.iter().enumerate() {
        assert_eq!(s.version, 2);
        assert_reports_bit_identical(&s.report, &direct_challenger[row], "promoted row");
    }

    // And the ordinary rollback path restores the old champion.
    assert_eq!(fleet.rollback("hmd").expect("rolls back"), 1);
    let scored = fleet.score_batch("hmd", &requests).expect("scores");
    for (row, s) in scored.iter().enumerate() {
        assert_reports_bit_identical(&s.report, &direct_champion[row], "rolled-back row");
    }
}
