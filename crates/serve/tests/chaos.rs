//! Seeded chaos tests: the serving layer under scheduled faults.
//!
//! Every test drives a fleet with a deterministic [`FaultPlan`] (fail-nth,
//! fail-after, slow-call, width-corrupt) and asserts the supervision
//! contracts: overload sheds with `Overloaded` instead of growing memory,
//! breakers trip and recover through half-open probes, degradation serves
//! synthetic escalations without polluting monitor statistics, the
//! background flusher fires `max_wait` with no waiter, breaker-aware
//! routing steers around open replicas, and rows that survive the chaos
//! stay bit-identical to direct `detect_batch` scoring.

use hmd_core::detector::{Detector, DetectorBackend, DetectorConfig, DetectorExt, MonitorStats};
use hmd_data::{Dataset, Label, Matrix};
use hmd_serve::{
    degraded_escalation, AdmissionPolicy, BreakerPolicy, BreakerState, DetectorFleet,
    FallbackPolicy, FaultInjector, FaultPlan, FleetConfig, FleetError, FlushPolicy, RoutePolicy,
    ShardConfig, ShardTicket, ShardedFleet, Ticket,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn blobs(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..n {
        let malware = rng.gen_bool(0.5);
        let c = if malware { 2.0 } else { -2.0 };
        rows.push(
            (0..features)
                .map(|f| {
                    if f < 2 {
                        c + rng.gen_range(-0.8..0.8)
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect(),
        );
        labels.push(Label::from(malware));
    }
    Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
}

fn request_matrix(rows: usize, features: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * features)
        .map(|_| rng.gen_range(-3.0..3.0))
        .collect();
    Matrix::from_vec(rows, features, data).unwrap()
}

/// Seeded training is deterministic: calling this twice with the same
/// arguments produces bit-identical detectors, which is how the tests get
/// an unwrapped reference copy of the model a `FaultInjector` wraps.
fn trained(num_estimators: usize, seed: u64) -> Box<dyn Detector> {
    DetectorConfig::trusted(DetectorBackend::random_forest())
        .with_num_estimators(num_estimators)
        .with_entropy_threshold(0.4)
        .fit(&blobs(140, 4, 11), seed)
        .expect("training succeeds")
}

fn faulty(num_estimators: usize, seed: u64, plan: FaultPlan) -> Box<dyn Detector> {
    Box::new(FaultInjector::new(trained(num_estimators, seed), plan))
}

fn assert_bit_identical(
    a: &hmd_core::trusted::DetectionReport,
    b: &hmd_core::trusted::DetectionReport,
    context: &str,
) {
    assert_eq!(
        a.prediction.entropy.to_bits(),
        b.prediction.entropy.to_bits(),
        "{context}: entropy"
    );
    assert_eq!(
        a.prediction.malware_vote_fraction.to_bits(),
        b.prediction.malware_vote_fraction.to_bits(),
        "{context}: vote fraction"
    );
    assert_eq!(a, b, "{context}");
}

/// Polls a ticket without ever blocking in `wait`, so nothing caller-side
/// can drive the flush — only the background flusher can resolve it.
fn poll_until_resolved(mut ticket: Ticket, budget: Duration) -> hmd_serve::VersionedReport {
    let deadline = Instant::now() + budget;
    loop {
        ticket = match ticket.try_wait() {
            Ok(result) => return result.expect("batch scores"),
            Err(ticket) => ticket,
        };
        assert!(
            Instant::now() < deadline,
            "background flusher never fired within {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The deadline flusher fires `max_wait` with **no** blocked waiter: a lone
/// request on a huge tile, observed only through non-blocking `try_wait`
/// polls, resolves on its own — and still bit-identically to direct
/// scoring.
#[test]
fn background_flusher_fires_max_wait_without_a_waiter() {
    let detector = trained(9, 71);
    let requests = request_matrix(1, 4, 72);
    let direct = detector.detect_batch(&requests).expect("direct");

    let max_wait = Duration::from_millis(30);
    let fleet = DetectorFleet::with_policy(FlushPolicy::new(4096, max_wait));
    fleet.deploy("hmd", detector);

    let start = Instant::now();
    let ticket = fleet.score("hmd", requests.row(0)).expect("enqueue");
    let scored = poll_until_resolved(ticket, Duration::from_secs(5));
    assert!(
        start.elapsed() >= max_wait,
        "the flusher cannot fire before the tile deadline"
    );
    assert_bit_identical(&scored.report, &direct[0], "unwaited lone request");
    let health = fleet.health("hmd").expect("health");
    assert!(
        health.expired_flushes >= 1,
        "the flush must be attributed to the supervisor, got {health:?}"
    );
    assert_eq!(health.pending_rows, 0, "the admission slot was released");
}

/// The same guarantee across a sharded fleet: replicas' tiles are covered
/// by the one fleet-wide flusher thread.
#[test]
fn background_flusher_covers_every_shard_replica() {
    let fleet = ShardedFleet::with_config(
        ShardConfig::new(3).with_flush(FlushPolicy::new(4096, Duration::from_millis(25))),
    );
    fleet.deploy("hmd", trained(9, 73)).expect("deploys");

    // Round-robin spreads three requests across all three replicas, each
    // opening its own tile with its own deadline.
    let tickets: Vec<ShardTicket> = (0..3)
        .map(|i| {
            fleet
                .score("hmd", request_matrix(1, 4, 80 + i).row(0))
                .expect("enqueue")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut pending: Vec<ShardTicket> = tickets;
    while !pending.is_empty() {
        assert!(Instant::now() < deadline, "a replica tile never flushed");
        pending = pending
            .into_iter()
            .filter_map(|ticket| match ticket.try_wait() {
                Ok(result) => {
                    result.expect("scores");
                    None
                }
                Err(ticket) => Some(ticket),
            })
            .collect();
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(fleet.stats("hmd").expect("stats").windows, 3);
}

/// Admission sheds explicitly at the row budget: enqueues beyond it return
/// `Overloaded` without copying anything, and draining re-admits.
#[test]
fn admission_budget_sheds_and_releases_under_burst() {
    let fleet = DetectorFleet::with_config(
        FleetConfig::default()
            .with_flush(FlushPolicy::new(4096, Duration::from_secs(10)))
            .with_admission(AdmissionPolicy::new(8)),
    );
    fleet.deploy("hmd", trained(9, 74));

    let requests = request_matrix(20, 4, 75);
    let mut admitted = Vec::new();
    let mut shed = 0;
    for row in 0..requests.rows() {
        match fleet.score("hmd", requests.row(row)) {
            Ok(ticket) => admitted.push(ticket),
            Err(FleetError::Overloaded { depth, limit }) => {
                assert_eq!(limit, 8);
                assert_eq!(depth, 8, "shedding starts exactly at the budget");
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(admitted.len(), 8, "the budget bounds admitted rows");
    assert_eq!(shed, 12);
    let health = fleet.health("hmd").expect("health");
    assert_eq!(health.pending_rows, 8);
    assert_eq!(health.shed_overload, 12);

    // Draining releases every slot; the endpoint admits again.
    assert_eq!(fleet.flush("hmd").expect("flush"), 8);
    for ticket in admitted {
        assert!(ticket.wait().is_ok());
    }
    assert_eq!(fleet.health("hmd").expect("health").pending_rows, 0);
    assert!(fleet.score("hmd", requests.row(0)).is_ok());
}

/// The full breaker arc, deterministically: three scheduled failures trip
/// the breaker, a zero cooldown lets the next request probe half-open, the
/// probe succeeds, and the endpoint serves bit-identically again.
#[test]
fn breaker_trips_on_consecutive_faults_and_recovers_via_probe() {
    let plan = FaultPlan::new().fail_call(1).fail_call(2).fail_call(3);
    let injector = FaultInjector::new(trained(9, 76), plan);
    let counters = injector.counters();
    let fleet = DetectorFleet::with_config(
        FleetConfig::default()
            // max_batch 1: every enqueue drains inline, so call numbers map
            // 1:1 onto scores and the schedule is exact.
            .with_flush(FlushPolicy::new(1, Duration::from_secs(10)))
            .with_breaker(BreakerPolicy::new(3, Duration::ZERO)),
    );
    fleet.deploy("hmd", Box::new(injector));

    let requests = request_matrix(6, 4, 77);
    for row in 0..3 {
        let ticket = fleet.score("hmd", requests.row(row)).expect("admitted");
        assert!(
            matches!(ticket.wait(), Err(FleetError::Detector { .. })),
            "scheduled fault surfaces as a detector error"
        );
    }
    let health = fleet.health("hmd").expect("health");
    assert_eq!(health.breaker, BreakerState::Open);
    assert_eq!(health.breaker_trips, 1);

    // Zero cooldown: the very next request becomes the half-open probe;
    // call 4 is clean, so it closes the breaker.
    let direct = trained(9, 76).detect_batch(&requests).expect("direct");
    let probe = fleet.score("hmd", requests.row(3)).expect("probe admitted");
    let scored = probe.wait().expect("probe succeeds");
    assert_bit_identical(&scored.report, &direct[3], "probe row");
    assert_eq!(
        fleet.breaker_state("hmd").expect("state"),
        BreakerState::Closed
    );
    for (row, expected) in direct.iter().enumerate().skip(4) {
        let scored = fleet
            .score("hmd", requests.row(row))
            .expect("recovered")
            .wait()
            .expect("scores");
        assert_bit_identical(&scored.report, expected, "post-recovery row");
    }
    assert_eq!(counters.calls(), 6);
    assert_eq!(counters.injected(), 3);
    // Only the three clean drains fed the monitor statistics.
    assert_eq!(fleet.stats("hmd").expect("stats").windows, 3);
}

/// While Open (cooldown not elapsed), requests shed instantly with
/// `CircuitOpen` — no tile, no drain, no detector call.
#[test]
fn open_breaker_fast_sheds_with_circuit_open() {
    let injector = FaultInjector::new(trained(9, 78), FaultPlan::new().fail_call(1));
    let counters = injector.counters();
    let fleet = DetectorFleet::with_config(
        FleetConfig::default()
            .with_flush(FlushPolicy::new(1, Duration::from_secs(10)))
            // A 1-failure threshold and a long cooldown keep the breaker
            // deterministically Open for the rest of the test.
            .with_breaker(BreakerPolicy::new(1, Duration::from_secs(600))),
    );
    fleet.deploy("hmd", Box::new(injector));

    let requests = request_matrix(4, 4, 79);
    let ticket = fleet.score("hmd", requests.row(0)).expect("admitted");
    assert!(matches!(ticket.wait(), Err(FleetError::Detector { .. })));
    assert_eq!(
        fleet.breaker_state("hmd").expect("state"),
        BreakerState::Open
    );

    for row in 1..4 {
        assert_eq!(
            fleet.score("hmd", requests.row(row)).unwrap_err(),
            FleetError::CircuitOpen
        );
    }
    // The detector saw exactly one call: shedding never reached it.
    assert_eq!(counters.calls(), 1);
    let health = fleet.health("hmd").expect("health");
    assert_eq!(health.shed_circuit, 3);
    assert_eq!(health.pending_rows, 0, "shed requests occupy no budget");
    // The batch path sheds identically.
    assert_eq!(
        fleet.score_batch("hmd", &requests).unwrap_err(),
        FleetError::CircuitOpen
    );
}

/// `EscalateUncertain` degrades instead of rejecting: shed requests resolve
/// immediately to the synthetic escalation report, which never touches the
/// endpoint's monitor statistics (infinite entropy would poison the
/// extremes forever).
#[test]
fn escalate_uncertain_serves_degraded_reports_without_polluting_stats() {
    let injector = FaultInjector::new(trained(9, 81), FaultPlan::new().fail_call(1));
    let fleet = DetectorFleet::with_config(
        FleetConfig::default()
            .with_flush(FlushPolicy::new(1, Duration::from_secs(10)))
            .with_breaker(
                BreakerPolicy::new(1, Duration::from_secs(600))
                    .with_fallback(FallbackPolicy::EscalateUncertain),
            ),
    );
    fleet.deploy("hmd", Box::new(injector));

    let requests = request_matrix(3, 4, 82);
    let ticket = fleet.score("hmd", requests.row(0)).expect("admitted");
    assert!(matches!(ticket.wait(), Err(FleetError::Detector { .. })));

    // Shed requests now succeed — degraded. The ticket resolves instantly
    // (try_wait, not wait: nothing is queued behind it).
    let degraded = fleet
        .score("hmd", requests.row(1))
        .expect("degraded ticket")
        .try_wait()
        .expect("pre-resolved")
        .expect("synthetic report");
    assert_eq!(degraded.report, degraded_escalation());
    assert!(degraded.report.prediction.entropy.is_infinite());
    let batch = fleet.score_batch("hmd", &requests).expect("degraded batch");
    assert_eq!(batch.len(), 3);
    for scored in &batch {
        assert_eq!(scored.report, degraded_escalation());
    }

    // Monitor statistics saw zero rows: the failed drain recorded nothing
    // and the degraded rows are deliberately excluded.
    assert_eq!(fleet.stats("hmd").expect("stats"), MonitorStats::default());
    let health = fleet.health("hmd").expect("health");
    assert_eq!(health.degraded_rows, 4, "1 enqueue + 3 batch rows degraded");
    assert_eq!(health.shed_circuit, 2, "one shed enqueue + one shed batch");
}

/// A detector returning fewer reports than rows (the width-corrupt fault)
/// fails the whole batch as a contract violation — every ticket errors, no
/// panic, no misaligned results — and the next tile scores cleanly.
#[test]
fn width_corrupt_fails_the_batch_instead_of_panicking() {
    let fleet = DetectorFleet::with_policy(FlushPolicy::new(2, Duration::from_secs(10)));
    fleet.deploy("hmd", faulty(9, 83, FaultPlan::new().corrupt_width(1)));

    let requests = request_matrix(4, 4, 84);
    let a = fleet.score("hmd", requests.row(0)).expect("enqueue");
    let b = fleet.score("hmd", requests.row(1)).expect("enqueue");
    for ticket in [a, b] {
        match ticket.wait() {
            Err(FleetError::Detector { message }) => {
                assert!(
                    message.contains("1 reports for a 2-row batch"),
                    "the contract violation is named: {message}"
                );
            }
            other => panic!("expected a failed batch, got {other:?}"),
        }
    }
    // Call 2 is clean: the endpoint keeps serving, bit-identically.
    let direct = trained(9, 83).detect_batch(&requests).expect("direct");
    let c = fleet.score("hmd", requests.row(2)).expect("enqueue");
    let d = fleet.score("hmd", requests.row(3)).expect("enqueue");
    assert_bit_identical(&c.wait().expect("clean").report, &direct[2], "row 2");
    assert_bit_identical(&d.wait().expect("clean").report, &direct[3], "row 3");
    assert_eq!(fleet.stats("hmd").expect("stats").windows, 2);
    assert_eq!(fleet.health("hmd").expect("health").pending_rows, 0);
}

/// Mixed fault schedule over a tiled burst: tiles hit by faults fail their
/// tickets, every surviving tile's rows stay bit-identical to direct
/// scoring, and a slow-call only delays — it never corrupts.
#[test]
fn surviving_rows_stay_bit_identical_under_mixed_faults() {
    let plan = FaultPlan::new()
        .fail_call(2)
        .corrupt_width(4)
        .slow_call(3, Duration::from_millis(15));
    let fleet = DetectorFleet::with_policy(FlushPolicy::new(4, Duration::from_secs(10)));
    fleet.deploy("hmd", faulty(15, 85, plan));

    let requests = request_matrix(16, 4, 86);
    let direct = trained(15, 85).detect_batch(&requests).expect("direct");

    // 16 single-row enqueues drain inline as four 4-row tiles, so rows 0-3
    // are batch call 1, rows 4-7 call 2 (fails), rows 8-11 call 3 (slow),
    // rows 12-15 call 4 (width-corrupt).
    let tickets: Vec<Ticket> = (0..requests.rows())
        .map(|row| fleet.score("hmd", requests.row(row)).expect("enqueue"))
        .collect();
    let mut failed = 0;
    for (row, ticket) in tickets.into_iter().enumerate() {
        let tile = row / 4 + 1;
        match ticket.wait() {
            Ok(scored) => {
                assert!(tile == 1 || tile == 3, "row {row} survived tile {tile}");
                assert_bit_identical(&scored.report, &direct[row], &format!("row {row}"));
            }
            Err(FleetError::Detector { .. }) => {
                assert!(tile == 2 || tile == 4, "row {row} failed in tile {tile}");
                failed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(failed, 8, "exactly the two faulted tiles failed");
    assert_eq!(fleet.stats("hmd").expect("stats").windows, 8);
}

/// Breaker-aware `LeastLoaded`: a replica whose breaker is Open is skipped,
/// so traffic flows to healthy siblings and scores bit-identically.
#[test]
fn least_loaded_routing_skips_open_replicas() {
    let fleet = ShardedFleet::with_config(
        ShardConfig::new(2)
            .with_policy(RoutePolicy::LeastLoaded)
            .with_flush(FlushPolicy::new(1, Duration::from_secs(10)))
            .with_breaker(BreakerPolicy::new(1, Duration::from_secs(600))),
    );
    // Replica 0 breaks on its first call; replica 1 is the same model,
    // unwrapped. `deploy_replicas` is the injector path — fault plans are
    // deliberately not persistable, so codec replication cannot carry them.
    fleet
        .deploy_replicas(
            "hmd",
            vec![faulty(9, 87, FaultPlan::new().fail_call(1)), trained(9, 87)],
        )
        .expect("replica deploy");

    let requests = request_matrix(6, 4, 88);
    let direct = trained(9, 87).detect_batch(&requests).expect("direct");

    // All tiles empty: least-loaded ties to replica 0, which fails and
    // trips its breaker.
    let first = fleet.score("hmd", requests.row(0)).expect("routed");
    assert_eq!(first.replica(), 0);
    assert!(matches!(first.wait(), Err(FleetError::Detector { .. })));
    assert_eq!(
        fleet.breaker_states("hmd").expect("states"),
        vec![BreakerState::Open, BreakerState::Closed]
    );

    // Every subsequent request skips the open replica.
    for (row, expected) in direct.iter().enumerate().skip(1) {
        let ticket = fleet.score("hmd", requests.row(row)).expect("routed");
        assert_eq!(ticket.replica(), 1, "open replica 0 must be skipped");
        let scored = ticket.wait().expect("healthy replica scores");
        assert_bit_identical(&scored.report, expected, &format!("row {row}"));
    }
    let health = fleet.replica_health("hmd").expect("health");
    assert_eq!(health[0].breaker_trips, 1);
    assert_eq!(health[1].breaker_trips, 0);
}

/// When **every** replica is shedding, `LeastLoaded` falls back to
/// round-robin so degraded fallbacks (and, later, cooldown probes) spread
/// across replicas instead of hammering one.
#[test]
fn all_open_replicas_fall_back_to_round_robin_degradation() {
    let fleet = ShardedFleet::with_config(
        ShardConfig::new(2)
            .with_policy(RoutePolicy::LeastLoaded)
            .with_flush(FlushPolicy::new(1, Duration::from_secs(10)))
            .with_breaker(
                BreakerPolicy::new(1, Duration::from_secs(600))
                    .with_fallback(FallbackPolicy::EscalateUncertain),
            ),
    );
    fleet
        .deploy_replicas(
            "hmd",
            vec![
                faulty(9, 89, FaultPlan::new().fail_call(1)),
                faulty(9, 89, FaultPlan::new().fail_call(1)),
            ],
        )
        .expect("replica deploy");

    let requests = request_matrix(6, 4, 90);
    // Trip both breakers: replica 0 first, then (0 skipped) replica 1.
    for row in 0..2 {
        let ticket = fleet.score("hmd", requests.row(row)).expect("routed");
        assert_eq!(ticket.replica(), row);
        assert!(matches!(ticket.wait(), Err(FleetError::Detector { .. })));
    }
    assert_eq!(
        fleet.breaker_states("hmd").expect("states"),
        vec![BreakerState::Open, BreakerState::Open]
    );

    // Both Open under EscalateUncertain: requests still get answers —
    // degraded — and the round-robin fallback alternates replicas.
    let mut replicas_seen = Vec::new();
    for row in 2..6 {
        let ticket = fleet.score("hmd", requests.row(row)).expect("degraded");
        replicas_seen.push(ticket.replica());
        let scored = ticket
            .try_wait()
            .expect("pre-resolved")
            .expect("synthetic report");
        assert_eq!(scored.report, degraded_escalation());
    }
    replicas_seen.sort_unstable();
    assert_eq!(replicas_seen, vec![0, 0, 1, 1], "degradation spreads");
    let health = fleet.replica_health("hmd").expect("health");
    assert_eq!(health[0].degraded_rows + health[1].degraded_rows, 4);
    // The merged monitor statistics saw nothing: every row either failed
    // its drain or was answered synthetically.
    assert_eq!(fleet.stats("hmd").expect("stats"), MonitorStats::default());
}

/// Deploy and rollback under injected faults: a faulty v2 fails its rows
/// (without tripping the default breaker), rollback restores v1, and
/// post-rollback traffic is bit-identical to v1's direct scoring.
#[test]
fn deploy_rollback_under_faults_stays_bit_identical() {
    let fleet = ShardedFleet::with_config(
        ShardConfig::new(2).with_flush(FlushPolicy::new(1, Duration::from_secs(10))),
    );
    let requests = request_matrix(8, 4, 92);
    let direct_v1 = trained(9, 91).detect_batch(&requests).expect("v1 direct");

    assert_eq!(fleet.deploy("hmd", trained(9, 91)).expect("v1"), 1);
    // v2: every call fails, on both replicas. Two failing rows per replica
    // stay below the default 5-failure threshold — this is a model-quality
    // incident, not a breaker incident, and rollback is the remedy.
    assert_eq!(
        fleet
            .deploy_replicas(
                "hmd",
                vec![
                    faulty(15, 93, FaultPlan::new().fail_after(1)),
                    faulty(15, 93, FaultPlan::new().fail_after(1)),
                ],
            )
            .expect("v2"),
        2
    );
    for row in 0..4 {
        let ticket = fleet.score("hmd", requests.row(row)).expect("routed");
        assert!(matches!(ticket.wait(), Err(FleetError::Detector { .. })));
    }
    assert_eq!(
        fleet.breaker_states("hmd").expect("states"),
        vec![BreakerState::Closed, BreakerState::Closed],
        "sub-threshold failures must not trip the breakers"
    );

    // Rollback fans out to both replicas; traffic reverts to v1 bits.
    assert_eq!(fleet.rollback("hmd").expect("rollback"), 1);
    assert_eq!(fleet.active_version("hmd").expect("version"), 1);
    for (row, expected) in direct_v1.iter().enumerate() {
        let scored = fleet
            .score("hmd", requests.row(row))
            .expect("routed")
            .wait()
            .expect("v1 scores");
        assert_eq!(scored.version, 1);
        assert_bit_identical(&scored.report, expected, &format!("row {row}"));
    }
}

/// A slow detector delays its tile but `wait_deadline` bounds the caller:
/// the impatient waiter times out while the batch completes for everyone
/// else.
#[test]
fn slow_calls_delay_but_wait_deadline_bounds_the_caller() {
    let plan = FaultPlan::new().slow_call(1, Duration::from_millis(120));
    let fleet = DetectorFleet::with_policy(FlushPolicy::new(2, Duration::from_secs(10)));
    fleet.deploy("hmd", faulty(9, 94, plan));

    let requests = request_matrix(2, 4, 95);
    let direct = trained(9, 94).detect_batch(&requests).expect("direct");
    let impatient = fleet.score("hmd", requests.row(0)).expect("enqueue");
    // The second enqueue fills the 2-row tile and drains it inline — which
    // stalls in the injected 120 ms delay. Run it on a helper thread so the
    // impatient caller can time out meanwhile.
    let drainer = {
        let row: Vec<f64> = requests.row(1).to_vec();
        let fleet = std::sync::Arc::new(fleet);
        let handle = std::sync::Arc::clone(&fleet);
        (
            fleet,
            std::thread::spawn(move || {
                handle
                    .score("hmd", &row)
                    .expect("enqueue drains inline")
                    .wait()
            }),
        )
    };
    let err = impatient
        .wait_deadline(Duration::from_millis(20))
        .unwrap_err();
    assert_eq!(
        err,
        FleetError::DeadlineExceeded {
            timeout: Duration::from_millis(20)
        }
    );
    // The batch itself was never cancelled: the patient caller's row (and
    // the whole tile) scored bit-identically despite the delay.
    let scored = drainer.1.join().expect("drainer thread").expect("scores");
    assert_bit_identical(&scored.report, &direct[1], "patient row");
    assert_eq!(drainer.0.stats("hmd").expect("stats").windows, 2);
}
