//! Fleet behaviour tests: the seeded multi-threaded equivalence proof
//! (fleet-routed single-row scoring is bit-identical to direct
//! `detect_batch`), hot swap mid-stream, and flush-policy edge cases.

use hmd_core::detector::{
    load, save, Detector, DetectorBackend, DetectorConfig, DetectorExt, MonitorSession,
};
use hmd_data::{Dataset, Label, Matrix};
use hmd_serve::{DetectorFleet, FleetError, FlushPolicy, VersionedReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn blobs(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..n {
        let malware = rng.gen_bool(0.5);
        let c = if malware { 2.0 } else { -2.0 };
        rows.push(
            (0..features)
                .map(|f| {
                    if f < 2 {
                        c + rng.gen_range(-0.8..0.8)
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect(),
        );
        labels.push(Label::from(malware));
    }
    Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
}

/// A matrix of scoring requests straddling both blobs and the space between,
/// so reports mix confident accepts with escalations.
fn request_matrix(rows: usize, features: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * features)
        .map(|_| rng.gen_range(-3.0..3.0))
        .collect();
    Matrix::from_vec(rows, features, data).unwrap()
}

fn trained(num_estimators: usize, seed: u64) -> Box<dyn Detector> {
    DetectorConfig::trusted(DetectorBackend::random_forest())
        .with_num_estimators(num_estimators)
        .with_entropy_threshold(0.4)
        .fit(&blobs(140, 4, 11), seed)
        .expect("training succeeds")
}

fn assert_reports_bit_identical(
    a: &hmd_core::trusted::DetectionReport,
    b: &hmd_core::trusted::DetectionReport,
    context: &str,
) {
    assert_eq!(
        a.prediction.entropy.to_bits(),
        b.prediction.entropy.to_bits(),
        "{context}: entropy"
    );
    assert_eq!(
        a.prediction.malware_vote_fraction.to_bits(),
        b.prediction.malware_vote_fraction.to_bits(),
        "{context}: vote fraction"
    );
    assert_eq!(a, b, "{context}");
}

/// The acceptance-criteria test: interleaved single-row `score()` calls from
/// multiple threads produce reports bit-identical to one direct
/// `detect_batch` over the same rows — regardless of how the micro-batcher
/// grouped them into tiles. The deployed copy is a save/load round trip of
/// the directly-scored detector, exactly the registry deployment scenario.
#[test]
fn interleaved_multithreaded_scoring_is_bit_identical_to_direct_batch() {
    let detector = trained(15, 21);
    let deployed = load(&save(detector.as_ref()).expect("persistable")).expect("loads");

    let requests = request_matrix(173, 4, 22);
    let direct = detector.detect_batch(&requests).expect("direct batch");

    // max_batch 7 deliberately misaligns with the request count and thread
    // interleaving, so tiles mix rows from every thread.
    let fleet = Arc::new(DetectorFleet::with_policy(FlushPolicy::new(
        7,
        Duration::from_millis(20),
    )));
    fleet.deploy("hmd", deployed);

    let threads = 4;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let fleet = Arc::clone(&fleet);
            let requests = requests.clone();
            std::thread::spawn(move || {
                let mut results: Vec<(usize, VersionedReport)> = Vec::new();
                for row in (t..requests.rows()).step_by(threads) {
                    let ticket = fleet.score("hmd", requests.row(row)).expect("enqueue");
                    results.push((row, ticket.wait().expect("scores")));
                }
                results
            })
        })
        .collect();

    let mut by_row: Vec<Option<VersionedReport>> = vec![None; requests.rows()];
    for handle in handles {
        for (row, report) in handle.join().expect("thread completes") {
            assert!(
                by_row[row].replace(report).is_none(),
                "row {row} scored once"
            );
        }
    }

    for (row, scored) in by_row.iter().enumerate() {
        let scored = scored.as_ref().expect("every row scored");
        assert_eq!(scored.version, 1);
        assert_reports_bit_identical(&scored.report, &direct[row], &format!("row {row}"));
    }

    // The fleet's owned monitor stats match a MonitorSession fed the same
    // reports — the per-tenant session state now lives behind the fleet.
    // Counters and extremes are order-independent and compared exactly; the
    // mean folds an f64 sum whose value depends on which order the threads
    // won the enqueue lock, so it gets a tolerance.
    let mut session = MonitorSession::new(detector.as_ref());
    session.observe_batch(&requests).expect("session batch");
    let fleet_stats = fleet.stats("hmd").expect("stats");
    let session_stats = session.stats();
    assert_eq!(fleet_stats.windows, session_stats.windows);
    assert_eq!(fleet_stats.accepted, session_stats.accepted);
    assert_eq!(fleet_stats.escalated, session_stats.escalated);
    assert_eq!(fleet_stats.accepted_malware, session_stats.accepted_malware);
    assert_eq!(fleet_stats.accepted_benign, session_stats.accepted_benign);
    assert_eq!(
        fleet_stats.min_entropy.to_bits(),
        session_stats.min_entropy.to_bits()
    );
    assert_eq!(
        fleet_stats.max_entropy.to_bits(),
        session_stats.max_entropy.to_bits()
    );
    assert!((fleet_stats.mean_entropy() - session_stats.mean_entropy()).abs() < 1e-12);
}

/// Hot swap mid-stream: requests keep flowing while a new version is
/// published. Every report must be attributable — stamped v1 results match
/// the v1 detector's direct output for that row, stamped v2 results match
/// the v2 detector's.
#[test]
fn hot_swap_mid_stream_keeps_every_report_attributable() {
    let v1 = trained(9, 31);
    let v2 = trained(15, 32); // different ensemble size => different reports
    let requests = request_matrix(120, 4, 33);
    let direct_v1 = v1.detect_batch(&requests).expect("v1 direct");
    let direct_v2 = v2.detect_batch(&requests).expect("v2 direct");

    let fleet = Arc::new(DetectorFleet::with_policy(FlushPolicy::new(
        5,
        Duration::from_millis(10),
    )));
    fleet.deploy("hmd", v1);

    let scorer = {
        let fleet = Arc::clone(&fleet);
        let requests = requests.clone();
        std::thread::spawn(move || {
            let mut results = Vec::new();
            for row in 0..requests.rows() {
                let ticket = fleet.score("hmd", requests.row(row)).expect("enqueue");
                results.push((row, ticket.wait().expect("scores")));
            }
            results
        })
    };
    // Publish v2 while the scorer is mid-stream.
    std::thread::sleep(Duration::from_millis(2));
    assert_eq!(fleet.deploy("hmd", v2), 2);

    let results = scorer.join().expect("scorer completes");
    assert_eq!(results.len(), requests.rows());
    let mut v2_seen = false;
    for (row, scored) in results {
        match scored.version {
            1 => {
                assert!(!v2_seen, "versions must not interleave backwards mid-tile");
                assert_reports_bit_identical(&scored.report, &direct_v1[row], "v1 row");
            }
            2 => {
                v2_seen = true;
                assert_reports_bit_identical(&scored.report, &direct_v2[row], "v2 row");
            }
            other => panic!("unexpected version {other}"),
        }
    }

    // Roll back and prove new traffic reverts to bit-identical v1 behaviour.
    assert_eq!(fleet.rollback("hmd").expect("previous version exists"), 1);
    let after = fleet.score_batch("hmd", &requests).expect("post-rollback");
    for (row, scored) in after.iter().enumerate() {
        assert_eq!(scored.version, 1);
        assert_reports_bit_identical(&scored.report, &direct_v1[row], "rolled-back row");
    }
}

/// A lone request on an idle endpoint resolves through the max-wait
/// deadline: its own `wait()` drains the tile — no background thread, no
/// hang, and the result still matches the direct path bit for bit.
#[test]
fn max_wait_deadline_drains_a_lonely_request() {
    let detector = trained(7, 41);
    let requests = request_matrix(1, 4, 42);
    let direct = detector.detect_batch(&requests).expect("direct");

    let max_wait = Duration::from_millis(30);
    let fleet = DetectorFleet::with_policy(FlushPolicy::new(4096, max_wait));
    fleet.deploy("hmd", detector);

    let start = Instant::now();
    let ticket = fleet.score("hmd", requests.row(0)).expect("enqueue");
    let scored = ticket.wait().expect("max-wait flush scores the tile");
    assert!(
        start.elapsed() >= max_wait,
        "the result cannot arrive before the flush deadline"
    );
    assert_reports_bit_identical(&scored.report, &direct[0], "lonely request");
    assert_eq!(fleet.stats("hmd").expect("stats").windows, 1);
}

/// An oversized burst from one producer drains tile by tile: every
/// `max_batch`-th enqueue flushes inline, the remainder drains on demand,
/// and nothing is lost or reordered.
#[test]
fn oversized_burst_drains_in_max_batch_tiles() {
    let detector = trained(7, 51);
    let requests = request_matrix(43, 4, 52);
    let direct = detector.detect_batch(&requests).expect("direct");

    let fleet = DetectorFleet::with_policy(FlushPolicy::new(8, Duration::from_secs(10)));
    fleet.deploy("hmd", detector);

    let tickets: Vec<_> = (0..requests.rows())
        .map(|row| fleet.score("hmd", requests.row(row)).expect("enqueue"))
        .collect();
    // 43 = 5 full tiles of 8 drained inline + 3 rows still pending.
    assert_eq!(fleet.stats("hmd").expect("stats").windows, 40);
    assert_eq!(fleet.flush("hmd").expect("flush"), 3);
    assert_eq!(fleet.stats("hmd").expect("stats").windows, 43);
    // An empty flush afterwards is a no-op, not an error.
    assert_eq!(fleet.flush("hmd").expect("empty flush"), 0);

    for (row, ticket) in tickets.into_iter().enumerate() {
        let scored = ticket
            .try_wait()
            .expect("all tiles drained")
            .expect("scores");
        assert_reports_bit_identical(&scored.report, &direct[row], "burst row");
    }
}

/// Two endpoints serve independent detectors with independent statistics.
#[test]
fn endpoints_are_isolated() {
    let fleet = DetectorFleet::new();
    fleet.deploy("small", trained(5, 61));
    fleet.deploy("large", trained(15, 62));
    assert_eq!(
        fleet.endpoints(),
        vec!["large".to_string(), "small".to_string()]
    );

    let requests = request_matrix(12, 4, 63);
    fleet.score_batch("small", &requests).expect("small scores");
    assert_eq!(fleet.stats("small").expect("stats").windows, 12);
    assert_eq!(fleet.stats("large").expect("stats").windows, 0);
    assert!(matches!(
        fleet.score_batch("ghost", &requests),
        Err(FleetError::UnknownEndpoint { .. })
    ));
}
