//! Per-endpoint circuit breakers: fast-shed around misbehaving detectors.
//!
//! A detector that fails every batch (a corrupted model artifact, a
//! contract-violating implementation, a poisoned feature pipeline) would
//! otherwise keep receiving rows, keep burning a drain per tile, and keep
//! fanning errors to every ticket — while, in a sharded fleet, the
//! least-loaded router happily routes *more* traffic at it because its tile
//! is always empty. The breaker is the standard three-state supervisor
//! around each serving unit:
//!
//! ```text
//!            consecutive failed drains >= failure_threshold
//!   Closed ─────────────────────────────────────────────────▶ Open
//!     ▲                                                        │
//!     │ probe drain succeeds                 cooldown elapses   │
//!     └───────────────────── HalfOpen ◀───────────────────────┘
//!                             │    ▲
//!                             └────┘ probe drain fails → Open again
//! ```
//!
//! * **Closed** — healthy; failed drains are counted, any successful drain
//!   resets the count.
//! * **Open** — shedding; every request is refused immediately (no tile, no
//!   drain, no memory) until the cooldown elapses. What "refused" means is
//!   the [`FallbackPolicy`]: hard rejection with
//!   [`crate::FleetError::CircuitOpen`], or graceful degradation to a
//!   synthetic *escalate* report — the paper's rejection semantics applied
//!   to infrastructure uncertainty: when the system cannot trust its own
//!   scoring path, the honest output is "escalate to an analyst", not a
//!   guessed label.
//! * **HalfOpen** — one probe request is admitted; its drain outcome closes
//!   the breaker or re-opens it for another cooldown. While the probe is in
//!   flight every other request keeps shedding.
//!
//! State transitions are driven by drain outcomes and request arrivals —
//! there is no timer thread. Concurrent tiles can race a transition (a tile
//! admitted while Closed may drain while Open); such stale outcomes only
//! feed the same consecutive-failure accounting and cannot wedge the state
//! machine.

use crate::sync::LockExt;
use hmd_core::estimator::UncertainPrediction;
use hmd_core::trusted::{Decision, DetectionReport};
use hmd_data::Label;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What an endpoint serves while its breaker is shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FallbackPolicy {
    /// Refuse the request with [`crate::FleetError::CircuitOpen`]. The
    /// caller sees the outage and applies its own fallback.
    Reject,
    /// Serve a synthetic degraded report ([`degraded_escalation`]):
    /// `Decision::Escalate` with infinite entropy and zero estimators — the
    /// detector's own "too uncertain to act" output, extended to the case
    /// where the *serving path* is what cannot be trusted. Degraded rows are
    /// counted in [`crate::HealthSnapshot::degraded_rows`] and never touch
    /// the endpoint's monitor statistics.
    EscalateUncertain,
}

/// Circuit-breaker configuration of one endpoint (one replica in a sharded
/// fleet — each replica is supervised independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failed drains that trip the breaker (clamped to at least
    /// 1 by [`BreakerPolicy::new`]).
    pub failure_threshold: usize,
    /// How long the breaker stays Open before admitting a half-open probe.
    /// `Duration::ZERO` makes recovery attempts immediate — useful for
    /// deterministic tests.
    pub cooldown: Duration,
    /// What shedding looks like to callers.
    pub fallback: FallbackPolicy,
}

impl BreakerPolicy {
    /// A breaker tripping after `failure_threshold` consecutive failed
    /// drains, cooling down for `cooldown`, rejecting while Open.
    pub fn new(failure_threshold: usize, cooldown: Duration) -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: failure_threshold.max(1),
            cooldown,
            fallback: FallbackPolicy::Reject,
        }
    }

    /// Sets the shedding behaviour.
    #[must_use]
    pub fn with_fallback(mut self, fallback: FallbackPolicy) -> BreakerPolicy {
        self.fallback = fallback;
        self
    }

    /// A breaker that never trips (`failure_threshold == usize::MAX`) —
    /// the pre-supervision behaviour.
    pub fn disabled() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: usize::MAX,
            cooldown: Duration::ZERO,
            fallback: FallbackPolicy::Reject,
        }
    }
}

impl Default for BreakerPolicy {
    /// Trip after 5 consecutive failed drains, cool down 250 ms, reject
    /// while Open.
    fn default() -> BreakerPolicy {
        BreakerPolicy::new(5, Duration::from_millis(250))
    }
}

/// Observable breaker state of one endpoint/replica.
///
/// `Open` is reported until a request actually transitions the breaker to
/// its half-open probe — the stored state, not a clock read — so a tripped
/// breaker with an elapsed cooldown still reads `Open` until traffic
/// arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BreakerState {
    /// Healthy: requests are admitted, failures are counted.
    #[default]
    Closed,
    /// Shedding: requests are refused (or degraded) until the cooldown
    /// elapses and a probe is admitted.
    Open,
    /// Probing: one request is in flight to decide recovery.
    HalfOpen,
}

/// Whether `enqueue` may admit a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Admit the request (possibly as the half-open probe).
    Admit,
    /// Shed per the [`FallbackPolicy`].
    Shed,
}

enum Inner {
    Closed { failures: usize },
    Open { until: Instant },
    HalfOpen { probing: bool },
}

/// The per-endpoint state machine. Internal: fleets expose it through
/// [`BreakerState`] snapshots and [`crate::HealthSnapshot`].
pub(crate) struct Breaker {
    policy: BreakerPolicy,
    inner: Mutex<Inner>,
}

impl Breaker {
    pub(crate) fn new(policy: BreakerPolicy) -> Breaker {
        Breaker {
            policy,
            inner: Mutex::new(Inner::Closed { failures: 0 }),
        }
    }

    pub(crate) fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Gate for one arriving request. Transitions Open → HalfOpen when the
    /// cooldown has elapsed (the arriving request becomes the probe).
    pub(crate) fn admit(&self, now: Instant) -> Admission {
        let mut inner = self.inner.lock_unpoisoned();
        match *inner {
            Inner::Closed { .. } => Admission::Admit,
            Inner::Open { until } => {
                if now >= until {
                    *inner = Inner::HalfOpen { probing: true };
                    Admission::Admit
                } else {
                    Admission::Shed
                }
            }
            Inner::HalfOpen { probing: false } => {
                *inner = Inner::HalfOpen { probing: true };
                Admission::Admit
            }
            Inner::HalfOpen { probing: true } => Admission::Shed,
        }
    }

    /// Records one drain outcome; returns `true` when this call tripped the
    /// breaker (Closed/HalfOpen → Open).
    pub(crate) fn record(&self, ok: bool, now: Instant) -> bool {
        let mut inner = self.inner.lock_unpoisoned();
        if ok {
            match *inner {
                // Reset the consecutive-failure count / close after a
                // successful probe.
                Inner::Closed { .. } | Inner::HalfOpen { .. } => {
                    *inner = Inner::Closed { failures: 0 };
                }
                // A success from a tile admitted before the trip must not
                // short-circuit the cooldown.
                Inner::Open { .. } => {}
            }
            return false;
        }
        match *inner {
            Inner::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.policy.failure_threshold {
                    *inner = Inner::Open {
                        until: now + self.policy.cooldown,
                    };
                    true
                } else {
                    *inner = Inner::Closed { failures };
                    false
                }
            }
            // A failed probe re-opens for another full cooldown.
            Inner::HalfOpen { .. } => {
                *inner = Inner::Open {
                    until: now + self.policy.cooldown,
                };
                true
            }
            Inner::Open { .. } => false,
        }
    }

    /// Whether a request arriving at `now` would be shed — the time-aware
    /// routing signal: an Open breaker whose cooldown has elapsed is *not*
    /// shedding (it wants a probe), a half-open breaker with its probe in
    /// flight is.
    pub(crate) fn would_shed(&self, now: Instant) -> bool {
        match *self.inner.lock_unpoisoned() {
            Inner::Closed { .. } => false,
            Inner::Open { until } => now < until,
            Inner::HalfOpen { probing } => probing,
        }
    }

    /// The stored state, for dashboards and tests.
    pub(crate) fn state(&self) -> BreakerState {
        match *self.inner.lock_unpoisoned() {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }
}

/// The synthetic report served under [`FallbackPolicy::EscalateUncertain`]:
/// an escalation with **infinite entropy** and zero estimators, so degraded
/// results are unmistakably distinguishable from anything a real ensemble
/// can produce (a real vote distribution's entropy is at most 1 bit).
pub fn degraded_escalation() -> DetectionReport {
    DetectionReport {
        prediction: UncertainPrediction {
            // Fail-safe posture: if anyone ignores the escalation and reads
            // the label anyway, they read the conservative class.
            label: Label::Malware,
            malware_vote_fraction: 0.5,
            entropy: f64::INFINITY,
            num_estimators: 0,
        },
        decision: Decision::Escalate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> Instant {
        Instant::now()
    }

    #[test]
    fn trips_after_consecutive_failures_and_successes_reset() {
        let breaker = Breaker::new(BreakerPolicy::new(3, Duration::from_secs(60)));
        assert!(!breaker.record(false, now()));
        assert!(!breaker.record(false, now()));
        assert!(!breaker.record(true, now()), "success resets the count");
        assert!(!breaker.record(false, now()));
        assert!(!breaker.record(false, now()));
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(
            breaker.record(false, now()),
            "third consecutive failure trips"
        );
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.admit(now()), Admission::Shed);
        assert!(breaker.would_shed(now()));
    }

    #[test]
    fn half_open_admits_one_probe_then_sheds() {
        let breaker = Breaker::new(BreakerPolicy::new(1, Duration::ZERO));
        assert!(breaker.record(false, now()));
        // Zero cooldown: the next arrival probes immediately...
        assert_eq!(breaker.admit(now()), Admission::Admit);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // ...and siblings shed while the probe is in flight.
        assert_eq!(breaker.admit(now()), Admission::Shed);
        assert!(breaker.would_shed(now()));
        // Probe succeeds: closed again.
        assert!(!breaker.record(true, now()));
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let breaker = Breaker::new(BreakerPolicy::new(1, Duration::from_secs(60)));
        let trip = now();
        assert!(breaker.record(false, trip));
        assert_eq!(breaker.admit(trip), Admission::Shed, "cooldown not elapsed");
        // Pretend the cooldown elapsed by probing with a far-future clock.
        let later = trip + Duration::from_secs(120);
        assert_eq!(breaker.admit(later), Admission::Admit);
        assert!(breaker.record(false, later), "failed probe re-trips");
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.admit(later), Admission::Shed);
    }

    #[test]
    fn stale_successes_do_not_close_an_open_breaker() {
        let breaker = Breaker::new(BreakerPolicy::new(1, Duration::from_secs(60)));
        let trip = now();
        assert!(breaker.record(false, trip));
        assert!(!breaker.record(true, trip), "pre-trip tile draining late");
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn degraded_report_is_unmistakable() {
        let report = degraded_escalation();
        assert!(report.decision.is_escalation());
        assert!(report.prediction.entropy.is_infinite());
        assert_eq!(report.prediction.num_estimators, 0);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let breaker = Breaker::new(BreakerPolicy::disabled());
        for _ in 0..1000 {
            assert!(!breaker.record(false, now()));
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
    }
}
