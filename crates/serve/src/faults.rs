//! Deterministic fault injection for serving-layer chaos tests.
//!
//! Robustness claims ("breakers trip and recover", "shedding bounds
//! memory", "surviving rows stay bit-identical") are only testable if
//! faults arrive on a schedule the test controls. [`FaultInjector`] wraps
//! any [`Detector`] and misbehaves according to a [`FaultPlan`] keyed on
//! the **batch-call number** — the 1-based count of `detect_rows`
//! invocations on that wrapper — so a seeded test knows exactly which
//! drain fails, which one stalls, and which one returns a short report
//! vector. No randomness, no wall-clock coupling: the same plan against
//! the same request schedule injects the same faults every run.
//!
//! One plan carries two fault vocabularies read by different layers:
//! detector faults (fail/slow/corrupt, keyed on `detect_rows` call
//! numbers) interpreted by [`FaultInjector`], and **transport faults**
//! (dropped connection, slow reader, truncated frame, garbage frame, keyed
//! on per-connection frame numbers) interpreted by the wire server's
//! fault-injecting stream wrapper in [`crate::net`]. Each interpreter
//! ignores the other's schedule, so a chaos test can hand the same plan to
//! both layers and reason about one deterministic timeline.
//!
//! The injector deliberately does **not** implement persistence
//! (`to_saved_json` stays `None`): a fault plan is test scaffolding, not a
//! model, and must never survive a save/load round trip. Deploy it into a
//! [`crate::ShardedFleet`] with
//! [`ShardedFleet::deploy_replicas`](crate::ShardedFleet::deploy_replicas),
//! which takes one pre-built detector per replica instead of cloning
//! through the codec.

use hmd_core::detector::Detector;
use hmd_core::trusted::DetectionReport;
use hmd_data::RowsView;
use hmd_ml::MlError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic schedule of detector misbehaviour, keyed on the 1-based
/// `detect_rows` call number of the [`FaultInjector`] that carries it.
///
/// Faults compose per call in a fixed order: a slow-call delay (if any)
/// happens first, then a scheduled failure wins over width corruption. An
/// empty plan injects nothing and the wrapper is a transparent proxy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    fail_calls: Vec<u64>,
    fail_from: Option<u64>,
    slow_calls: Vec<(u64, Duration)>,
    corrupt_calls: Vec<u64>,
    drop_reads: Vec<u64>,
    slow_reads: Vec<(u64, Duration)>,
    truncate_writes: Vec<u64>,
    garbage_writes: Vec<u64>,
}

impl FaultPlan {
    /// An empty plan: the injector proxies every call untouched.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fails batch call `call` (1-based) with an injected
    /// [`MlError::ContractViolation`].
    #[must_use]
    pub fn fail_call(mut self, call: u64) -> FaultPlan {
        self.fail_calls.push(call);
        self
    }

    /// Fails **every** batch call numbered `call` or later — a detector that
    /// breaks at a known point and stays broken until redeployed (or until
    /// the test swaps the plan out by deploying a clean detector).
    #[must_use]
    pub fn fail_after(mut self, call: u64) -> FaultPlan {
        self.fail_from = Some(match self.fail_from {
            Some(existing) => existing.min(call),
            None => call,
        });
        self
    }

    /// Delays batch call `call` (1-based) by `latency` before scoring — a
    /// stalled model run that backs its endpoint's tile up.
    #[must_use]
    pub fn slow_call(mut self, call: u64, latency: Duration) -> FaultPlan {
        self.slow_calls.push((call, latency));
        self
    }

    /// Makes batch call `call` (1-based) return one report **fewer** than
    /// the view has rows — the report-count contract violation a buggy
    /// detector implementation would commit. The serving layer must fail
    /// the whole batch rather than panic or misalign tickets.
    #[must_use]
    pub fn corrupt_width(mut self, call: u64) -> FaultPlan {
        self.corrupt_calls.push(call);
        self
    }

    /// Drops the connection instead of serving **request frame** `frame`
    /// (1-based, counted per connection): the peer sees its write or the
    /// response read fail mid-conversation — the transport fault a crashed
    /// or restarted server produces.
    ///
    /// Transport faults are interpreted by the server's fault-injecting
    /// stream wrapper (`hmd_serve::net`), not by [`FaultInjector`]; one
    /// plan can carry both vocabularies and each layer reads only its own.
    #[must_use]
    pub fn drop_connection(mut self, frame: u64) -> FaultPlan {
        self.drop_reads.push(frame);
        self
    }

    /// Stalls for `delay` before reading request frame `frame` (1-based,
    /// per connection) — a slow reader that backs the peer's writes up and
    /// exercises client-side read timeouts without killing the connection.
    #[must_use]
    pub fn slow_reader(mut self, frame: u64, delay: Duration) -> FaultPlan {
        self.slow_reads.push((frame, delay));
        self
    }

    /// Truncates **response frame** `frame` (1-based, per connection):
    /// writes roughly half the frame's bytes, then drops the connection.
    /// The peer reads a header that promises more payload than ever
    /// arrives — the mid-frame cut of a crashing sender.
    #[must_use]
    pub fn truncate_frame(mut self, frame: u64) -> FaultPlan {
        self.truncate_writes.push(frame);
        self
    }

    /// Corrupts response frame `frame` (1-based, per connection): the full
    /// frame is written but its magic bytes are garbage, so the peer's
    /// framing layer must reject the stream as desynchronised rather than
    /// misparse it.
    #[must_use]
    pub fn garbage_frame(mut self, frame: u64) -> FaultPlan {
        self.garbage_writes.push(frame);
        self
    }

    /// True if the plan schedules any transport fault (as opposed to the
    /// detector faults [`FaultInjector`] interprets).
    pub fn has_transport_faults(&self) -> bool {
        !self.drop_reads.is_empty()
            || !self.slow_reads.is_empty()
            || !self.truncate_writes.is_empty()
            || !self.garbage_writes.is_empty()
    }

    pub(crate) fn drops_read(&self, frame: u64) -> bool {
        self.drop_reads.contains(&frame)
    }

    pub(crate) fn read_delay(&self, frame: u64) -> Option<Duration> {
        self.slow_reads
            .iter()
            .find(|(slow, _)| *slow == frame)
            .map(|(_, delay)| *delay)
    }

    pub(crate) fn truncates_write(&self, frame: u64) -> bool {
        self.truncate_writes.contains(&frame)
    }

    pub(crate) fn garbles_write(&self, frame: u64) -> bool {
        self.garbage_writes.contains(&frame)
    }

    fn fails(&self, call: u64) -> bool {
        self.fail_calls.contains(&call) || self.fail_from.is_some_and(|from| call >= from)
    }

    fn delay(&self, call: u64) -> Option<Duration> {
        self.slow_calls
            .iter()
            .find(|(slow, _)| *slow == call)
            .map(|(_, latency)| *latency)
    }

    fn corrupts(&self, call: u64) -> bool {
        self.corrupt_calls.contains(&call)
    }
}

struct Counters {
    calls: AtomicU64,
    injected: AtomicU64,
}

/// A cloneable observation handle on a [`FaultInjector`]'s counters, so a
/// test keeps visibility after the injector itself is boxed and deployed
/// into a fleet.
#[derive(Clone)]
pub struct FaultCounters {
    counters: Arc<Counters>,
}

impl FaultCounters {
    /// Total `detect_rows` calls the injector has seen (faulted or clean).
    pub fn calls(&self) -> u64 {
        self.counters.calls.load(Ordering::SeqCst)
    }

    /// How many of those calls had a fault injected (failure, delay, or
    /// width corruption — a delayed call that then fails counts once).
    pub fn injected(&self) -> u64 {
        self.counters.injected.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for FaultCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultCounters")
            .field("calls", &self.calls())
            .field("injected", &self.injected())
            .finish()
    }
}

/// A [`Detector`] wrapper that injects the faults its [`FaultPlan`]
/// schedules and proxies everything else to the wrapped detector.
///
/// Clean calls are bit-transparent: the inner detector's reports pass
/// through untouched, which is what lets chaos tests assert surviving rows
/// bit-identical to direct scoring.
pub struct FaultInjector {
    inner: Box<dyn Detector>,
    plan: FaultPlan,
    counters: Arc<Counters>,
}

impl FaultInjector {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: Box<dyn Detector>, plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            inner,
            plan,
            counters: Arc::new(Counters {
                calls: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// An observation handle that stays valid after the injector is boxed
    /// and deployed.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            counters: Arc::clone(&self.counters),
        }
    }
}

impl Detector for FaultInjector {
    fn name(&self) -> String {
        format!("faulty[{}]", self.inner.name())
    }

    fn entropy_threshold(&self) -> f64 {
        self.inner.entropy_threshold()
    }

    fn detect_rows(&self, batch: RowsView<'_>) -> Result<Vec<DetectionReport>, MlError> {
        let call = self.counters.calls.fetch_add(1, Ordering::SeqCst) + 1;
        let mut faulted = false;
        if let Some(latency) = self.plan.delay(call) {
            faulted = true;
            std::thread::sleep(latency);
        }
        let result = if self.plan.fails(call) {
            faulted = true;
            Err(MlError::ContractViolation {
                message: format!("injected fault on batch call {call}"),
            })
        } else if self.plan.corrupts(call) {
            faulted = true;
            self.inner.detect_rows(batch).map(|mut reports| {
                reports.pop();
                reports
            })
        } else {
            self.inner.detect_rows(batch)
        };
        if faulted {
            self.counters.injected.fetch_add(1, Ordering::SeqCst);
        }
        result
    }

    // No `to_saved_json` override: the default `None` is deliberate — a
    // fault plan must not survive persistence (codec replication would
    // silently drop it, so `ShardedFleet::deploy` rejects the injector and
    // tests use `deploy_replicas` instead).
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;

    /// A minimal healthy detector: everything benign, fixed threshold.
    struct Stub;

    impl Detector for Stub {
        fn name(&self) -> String {
            "stub".into()
        }

        fn entropy_threshold(&self) -> f64 {
            0.5
        }

        fn detect_rows(&self, batch: RowsView<'_>) -> Result<Vec<DetectionReport>, MlError> {
            use hmd_core::estimator::UncertainPrediction;
            use hmd_core::trusted::Decision;
            use hmd_data::Label;
            Ok((0..batch.rows())
                .map(|_| DetectionReport {
                    prediction: UncertainPrediction {
                        label: Label::Benign,
                        malware_vote_fraction: 0.0,
                        entropy: 0.0,
                        num_estimators: 1,
                    },
                    decision: Decision::Accept(Label::Benign),
                })
                .collect())
        }
    }

    fn rows(n: usize) -> Matrix {
        Matrix::from_vec(n, 2, vec![0.0; n * 2]).expect("valid shape")
    }

    #[test]
    fn empty_plans_proxy_transparently() {
        let injector = FaultInjector::new(Box::new(Stub), FaultPlan::new());
        let counters = injector.counters();
        assert!(injector.name().starts_with("faulty[stub"));
        assert_eq!(injector.entropy_threshold(), 0.5);
        let reports = injector.detect_rows(rows(3).view()).expect("clean call");
        assert_eq!(reports.len(), 3);
        assert_eq!((counters.calls(), counters.injected()), (1, 0));
        assert!(injector.to_saved_json().is_none(), "never persistable");
    }

    #[test]
    fn fail_call_hits_exactly_the_scheduled_call() {
        let injector = FaultInjector::new(Box::new(Stub), FaultPlan::new().fail_call(2));
        assert!(injector.detect_rows(rows(1).view()).is_ok());
        let err = injector.detect_rows(rows(1).view()).unwrap_err();
        assert!(matches!(err, MlError::ContractViolation { .. }));
        assert!(injector.detect_rows(rows(1).view()).is_ok());
        assert_eq!(injector.counters().injected(), 1);
    }

    #[test]
    fn fail_after_is_sticky_and_keeps_the_earliest_onset() {
        let injector =
            FaultInjector::new(Box::new(Stub), FaultPlan::new().fail_after(5).fail_after(2));
        assert!(injector.detect_rows(rows(1).view()).is_ok());
        for _ in 0..4 {
            assert!(injector.detect_rows(rows(1).view()).is_err());
        }
        assert_eq!(injector.counters().injected(), 4);
    }

    #[test]
    fn corrupt_width_drops_exactly_one_report() {
        let injector = FaultInjector::new(Box::new(Stub), FaultPlan::new().corrupt_width(1));
        let short = injector.detect_rows(rows(4).view()).expect("still Ok");
        assert_eq!(short.len(), 3, "one report short of the 4 rows");
        let clean = injector.detect_rows(rows(4).view()).expect("clean call");
        assert_eq!(clean.len(), 4);
    }

    #[test]
    fn transport_faults_live_beside_detector_faults() {
        let plan = FaultPlan::new()
            .fail_call(1)
            .drop_connection(2)
            .slow_reader(3, Duration::from_millis(5))
            .truncate_frame(4)
            .garbage_frame(5);
        assert!(plan.has_transport_faults());
        assert!(plan.drops_read(2) && !plan.drops_read(1));
        assert_eq!(plan.read_delay(3), Some(Duration::from_millis(5)));
        assert!(plan.truncates_write(4) && !plan.truncates_write(5));
        assert!(plan.garbles_write(5) && !plan.garbles_write(4));
        // Detector-only plans schedule no transport faults, and the
        // detector-side injector ignores the transport schedule entirely.
        assert!(!FaultPlan::new().fail_call(1).has_transport_faults());
        let injector = FaultInjector::new(Box::new(Stub), plan);
        let err = injector.detect_rows(rows(1).view()).unwrap_err();
        assert!(matches!(err, MlError::ContractViolation { .. }));
        assert!(injector.detect_rows(rows(1).view()).is_ok());
    }

    #[test]
    fn slow_call_delays_then_scores_normally() {
        let injector = FaultInjector::new(
            Box::new(Stub),
            FaultPlan::new().slow_call(1, Duration::from_millis(20)),
        );
        let started = std::time::Instant::now();
        let reports = injector
            .detect_rows(rows(2).view())
            .expect("slow, not broken");
        assert!(started.elapsed() >= Duration::from_millis(20));
        assert_eq!(reports.len(), 2);
        assert_eq!(injector.counters().injected(), 1);
    }
}
