//! Deterministic fault injection for serving-layer chaos tests.
//!
//! Robustness claims ("breakers trip and recover", "shedding bounds
//! memory", "surviving rows stay bit-identical") are only testable if
//! faults arrive on a schedule the test controls. [`FaultInjector`] wraps
//! any [`Detector`] and misbehaves according to a [`FaultPlan`] keyed on
//! the **batch-call number** — the 1-based count of `detect_rows`
//! invocations on that wrapper — so a seeded test knows exactly which
//! drain fails, which one stalls, and which one returns a short report
//! vector. No randomness, no wall-clock coupling: the same plan against
//! the same request schedule injects the same faults every run.
//!
//! The injector deliberately does **not** implement persistence
//! (`to_saved_json` stays `None`): a fault plan is test scaffolding, not a
//! model, and must never survive a save/load round trip. Deploy it into a
//! [`crate::ShardedFleet`] with
//! [`ShardedFleet::deploy_replicas`](crate::ShardedFleet::deploy_replicas),
//! which takes one pre-built detector per replica instead of cloning
//! through the codec.

use hmd_core::detector::Detector;
use hmd_core::trusted::DetectionReport;
use hmd_data::RowsView;
use hmd_ml::MlError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic schedule of detector misbehaviour, keyed on the 1-based
/// `detect_rows` call number of the [`FaultInjector`] that carries it.
///
/// Faults compose per call in a fixed order: a slow-call delay (if any)
/// happens first, then a scheduled failure wins over width corruption. An
/// empty plan injects nothing and the wrapper is a transparent proxy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    fail_calls: Vec<u64>,
    fail_from: Option<u64>,
    slow_calls: Vec<(u64, Duration)>,
    corrupt_calls: Vec<u64>,
}

impl FaultPlan {
    /// An empty plan: the injector proxies every call untouched.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fails batch call `call` (1-based) with an injected
    /// [`MlError::ContractViolation`].
    #[must_use]
    pub fn fail_call(mut self, call: u64) -> FaultPlan {
        self.fail_calls.push(call);
        self
    }

    /// Fails **every** batch call numbered `call` or later — a detector that
    /// breaks at a known point and stays broken until redeployed (or until
    /// the test swaps the plan out by deploying a clean detector).
    #[must_use]
    pub fn fail_after(mut self, call: u64) -> FaultPlan {
        self.fail_from = Some(match self.fail_from {
            Some(existing) => existing.min(call),
            None => call,
        });
        self
    }

    /// Delays batch call `call` (1-based) by `latency` before scoring — a
    /// stalled model run that backs its endpoint's tile up.
    #[must_use]
    pub fn slow_call(mut self, call: u64, latency: Duration) -> FaultPlan {
        self.slow_calls.push((call, latency));
        self
    }

    /// Makes batch call `call` (1-based) return one report **fewer** than
    /// the view has rows — the report-count contract violation a buggy
    /// detector implementation would commit. The serving layer must fail
    /// the whole batch rather than panic or misalign tickets.
    #[must_use]
    pub fn corrupt_width(mut self, call: u64) -> FaultPlan {
        self.corrupt_calls.push(call);
        self
    }

    fn fails(&self, call: u64) -> bool {
        self.fail_calls.contains(&call) || self.fail_from.is_some_and(|from| call >= from)
    }

    fn delay(&self, call: u64) -> Option<Duration> {
        self.slow_calls
            .iter()
            .find(|(slow, _)| *slow == call)
            .map(|(_, latency)| *latency)
    }

    fn corrupts(&self, call: u64) -> bool {
        self.corrupt_calls.contains(&call)
    }
}

struct Counters {
    calls: AtomicU64,
    injected: AtomicU64,
}

/// A cloneable observation handle on a [`FaultInjector`]'s counters, so a
/// test keeps visibility after the injector itself is boxed and deployed
/// into a fleet.
#[derive(Clone)]
pub struct FaultCounters {
    counters: Arc<Counters>,
}

impl FaultCounters {
    /// Total `detect_rows` calls the injector has seen (faulted or clean).
    pub fn calls(&self) -> u64 {
        self.counters.calls.load(Ordering::SeqCst)
    }

    /// How many of those calls had a fault injected (failure, delay, or
    /// width corruption — a delayed call that then fails counts once).
    pub fn injected(&self) -> u64 {
        self.counters.injected.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for FaultCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultCounters")
            .field("calls", &self.calls())
            .field("injected", &self.injected())
            .finish()
    }
}

/// A [`Detector`] wrapper that injects the faults its [`FaultPlan`]
/// schedules and proxies everything else to the wrapped detector.
///
/// Clean calls are bit-transparent: the inner detector's reports pass
/// through untouched, which is what lets chaos tests assert surviving rows
/// bit-identical to direct scoring.
pub struct FaultInjector {
    inner: Box<dyn Detector>,
    plan: FaultPlan,
    counters: Arc<Counters>,
}

impl FaultInjector {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: Box<dyn Detector>, plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            inner,
            plan,
            counters: Arc::new(Counters {
                calls: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// An observation handle that stays valid after the injector is boxed
    /// and deployed.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            counters: Arc::clone(&self.counters),
        }
    }
}

impl Detector for FaultInjector {
    fn name(&self) -> String {
        format!("faulty[{}]", self.inner.name())
    }

    fn entropy_threshold(&self) -> f64 {
        self.inner.entropy_threshold()
    }

    fn detect_rows(&self, batch: RowsView<'_>) -> Result<Vec<DetectionReport>, MlError> {
        let call = self.counters.calls.fetch_add(1, Ordering::SeqCst) + 1;
        let mut faulted = false;
        if let Some(latency) = self.plan.delay(call) {
            faulted = true;
            std::thread::sleep(latency);
        }
        let result = if self.plan.fails(call) {
            faulted = true;
            Err(MlError::ContractViolation {
                message: format!("injected fault on batch call {call}"),
            })
        } else if self.plan.corrupts(call) {
            faulted = true;
            self.inner.detect_rows(batch).map(|mut reports| {
                reports.pop();
                reports
            })
        } else {
            self.inner.detect_rows(batch)
        };
        if faulted {
            self.counters.injected.fetch_add(1, Ordering::SeqCst);
        }
        result
    }

    // No `to_saved_json` override: the default `None` is deliberate — a
    // fault plan must not survive persistence (codec replication would
    // silently drop it, so `ShardedFleet::deploy` rejects the injector and
    // tests use `deploy_replicas` instead).
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;

    /// A minimal healthy detector: everything benign, fixed threshold.
    struct Stub;

    impl Detector for Stub {
        fn name(&self) -> String {
            "stub".into()
        }

        fn entropy_threshold(&self) -> f64 {
            0.5
        }

        fn detect_rows(&self, batch: RowsView<'_>) -> Result<Vec<DetectionReport>, MlError> {
            use hmd_core::estimator::UncertainPrediction;
            use hmd_core::trusted::Decision;
            use hmd_data::Label;
            Ok((0..batch.rows())
                .map(|_| DetectionReport {
                    prediction: UncertainPrediction {
                        label: Label::Benign,
                        malware_vote_fraction: 0.0,
                        entropy: 0.0,
                        num_estimators: 1,
                    },
                    decision: Decision::Accept(Label::Benign),
                })
                .collect())
        }
    }

    fn rows(n: usize) -> Matrix {
        Matrix::from_vec(n, 2, vec![0.0; n * 2]).expect("valid shape")
    }

    #[test]
    fn empty_plans_proxy_transparently() {
        let injector = FaultInjector::new(Box::new(Stub), FaultPlan::new());
        let counters = injector.counters();
        assert!(injector.name().starts_with("faulty[stub"));
        assert_eq!(injector.entropy_threshold(), 0.5);
        let reports = injector.detect_rows(rows(3).view()).expect("clean call");
        assert_eq!(reports.len(), 3);
        assert_eq!((counters.calls(), counters.injected()), (1, 0));
        assert!(injector.to_saved_json().is_none(), "never persistable");
    }

    #[test]
    fn fail_call_hits_exactly_the_scheduled_call() {
        let injector = FaultInjector::new(Box::new(Stub), FaultPlan::new().fail_call(2));
        assert!(injector.detect_rows(rows(1).view()).is_ok());
        let err = injector.detect_rows(rows(1).view()).unwrap_err();
        assert!(matches!(err, MlError::ContractViolation { .. }));
        assert!(injector.detect_rows(rows(1).view()).is_ok());
        assert_eq!(injector.counters().injected(), 1);
    }

    #[test]
    fn fail_after_is_sticky_and_keeps_the_earliest_onset() {
        let injector =
            FaultInjector::new(Box::new(Stub), FaultPlan::new().fail_after(5).fail_after(2));
        assert!(injector.detect_rows(rows(1).view()).is_ok());
        for _ in 0..4 {
            assert!(injector.detect_rows(rows(1).view()).is_err());
        }
        assert_eq!(injector.counters().injected(), 4);
    }

    #[test]
    fn corrupt_width_drops_exactly_one_report() {
        let injector = FaultInjector::new(Box::new(Stub), FaultPlan::new().corrupt_width(1));
        let short = injector.detect_rows(rows(4).view()).expect("still Ok");
        assert_eq!(short.len(), 3, "one report short of the 4 rows");
        let clean = injector.detect_rows(rows(4).view()).expect("clean call");
        assert_eq!(clean.len(), 4);
    }

    #[test]
    fn slow_call_delays_then_scores_normally() {
        let injector = FaultInjector::new(
            Box::new(Stub),
            FaultPlan::new().slow_call(1, Duration::from_millis(20)),
        );
        let started = std::time::Instant::now();
        let reports = injector
            .detect_rows(rows(2).view())
            .expect("slow, not broken");
        assert!(started.elapsed() >= Duration::from_millis(20));
        assert_eq!(reports.len(), 2);
        assert_eq!(injector.counters().injected(), 1);
    }
}
