//! Bounded per-endpoint admission: the row budget behind explicit
//! load-shedding.
//!
//! A micro-batching endpoint with no admission bound converts overload into
//! unbounded memory: every `score()` copies its row into the open tile (and
//! holds a result slot alive) whether or not anything downstream can keep
//! up. At fleet scale the correct failure mode is to **shed** — reject the
//! request with [`crate::FleetError::Overloaded`] while the rows already
//! admitted keep their latency — exactly the explicit busy/backpressure
//! signalling of staged DAQ readout chains. The budget is enforced with one
//! atomic counter per endpoint: rows are counted in at enqueue and counted
//! out when their tile's drain publishes results, so the bound covers both
//! the open tile and batches in flight.

/// Per-endpoint admission budget: how many rows may be admitted (queued in
/// the open tile or in a draining batch) before `score()` sheds with
/// [`crate::FleetError::Overloaded`].
///
/// The budget is a **row** budget, not a request budget, because rows are
/// what occupy memory (one row copy plus one result slot each). Batch-path
/// calls (`score_batch`) run synchronously on the caller and are not
/// counted — they occupy no queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum rows admitted but not yet scored per endpoint (clamped to at
    /// least 1 by [`AdmissionPolicy::new`]).
    pub max_pending_rows: usize,
}

impl AdmissionPolicy {
    /// A budget of `max_pending_rows` rows, clamped to at least 1 (a
    /// 0-row budget would shed everything, which is a misconfiguration, not
    /// a policy).
    pub fn new(max_pending_rows: usize) -> AdmissionPolicy {
        AdmissionPolicy {
            max_pending_rows: max_pending_rows.max(1),
        }
    }

    /// No admission bound: every request is accepted. This restores the
    /// pre-supervision behaviour and is appropriate only when the caller
    /// population is trusted to apply its own backpressure.
    pub fn unbounded() -> AdmissionPolicy {
        AdmissionPolicy {
            max_pending_rows: usize::MAX,
        }
    }

    /// Whether this policy actually bounds admission.
    pub fn is_bounded(&self) -> bool {
        self.max_pending_rows != usize::MAX
    }
}

impl Default for AdmissionPolicy {
    /// 16384 pending rows — generous enough that a healthy endpoint under
    /// its default 64-row tiles never sheds, small enough that a stalled
    /// detector bounds memory at roughly one batch-4096 drain plus backlog.
    fn default() -> AdmissionPolicy {
        AdmissionPolicy::new(16_384)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budgets_clamp_to_one() {
        assert_eq!(AdmissionPolicy::new(0).max_pending_rows, 1);
        assert_eq!(AdmissionPolicy::new(7).max_pending_rows, 7);
    }

    #[test]
    fn unbounded_is_unbounded() {
        assert!(!AdmissionPolicy::unbounded().is_bounded());
        assert!(AdmissionPolicy::default().is_bounded());
    }
}
