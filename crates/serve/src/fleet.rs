//! The single-replica fleet: named, versioned, micro-batching detector
//! endpoints under per-endpoint supervision.
//!
//! This module is the substrate of the serving crate. [`DetectorFleet`] maps
//! endpoint names to [`Endpoint`]s; each endpoint owns a versioned stack of
//! `Box<dyn Detector>` models, its own [`MonitorStats`], one pending
//! micro-batch tile, an admission budget ([`crate::AdmissionPolicy`]) and a
//! circuit breaker ([`crate::BreakerPolicy`]). A fleet-wide supervisor
//! thread ([`crate::supervisor`]) fires `max_wait` deadlines even when no
//! caller is blocked in [`Ticket::wait`]. The sharded layer in
//! [`crate::shard`] replicates these endpoints N ways and routes between
//! them — it reuses every type here rather than reimplementing the tile
//! machinery.

use crate::admission::AdmissionPolicy;
use crate::breaker::{
    degraded_escalation, Admission, Breaker, BreakerPolicy, BreakerState, FallbackPolicy,
};
use crate::supervisor::{Supervisor, TileNotifier};
use crate::sync::{unpoison, LockExt, RwLockExt};
use hmd_core::detector::{Detector, MonitorStats};
use hmd_core::trusted::DetectionReport;
use hmd_data::{Matrix, RowsView};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// When a per-endpoint request tile drains through the batch hot path.
///
/// A tile flushes as soon as **either** bound is hit: it collected
/// `max_batch` rows, or the oldest enqueued request has waited `max_wait`
/// (enforced by the fleet's background flusher, or by whichever
/// [`Ticket::wait`] caller notices first — whichever comes sooner). Large
/// `max_batch` + small `max_wait` trades a bounded latency floor for
/// batch-sized throughput; `max_batch == 1` degenerates to direct scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Maximum rows collected before the enqueueing caller drains the tile.
    pub max_batch: usize,
    /// Maximum time the oldest request waits before the tile is drained for
    /// it (never below [`FlushPolicy::MIN_WAIT`]).
    pub max_wait: Duration,
}

impl FlushPolicy {
    /// The smallest accepted `max_wait`. A zero (or near-zero) deadline
    /// would mark every tile expired the moment it opens: batching
    /// degenerates to per-row scoring while the background flusher spins on
    /// perpetually-expired tiles. [`FlushPolicy::new`] clamps up to this
    /// floor instead.
    pub const MIN_WAIT: Duration = Duration::from_micros(100);

    /// A policy flushing at `max_batch` rows or after `max_wait`.
    ///
    /// Both degenerate edges are clamped rather than rejected, because
    /// every clamped value still has a well-defined meaning: `max_batch`
    /// is raised to 1 (a 0-row tile could never drain), and `max_wait` is
    /// raised to [`FlushPolicy::MIN_WAIT`] (an already-expired tile defeats
    /// batching — see the constant's docs).
    pub fn new(max_batch: usize, max_wait: Duration) -> FlushPolicy {
        FlushPolicy {
            max_batch: max_batch.max(1),
            max_wait: max_wait.max(Self::MIN_WAIT),
        }
    }
}

impl Default for FlushPolicy {
    /// 64 rows (one flat-engine tile) or 2 ms, whichever comes first.
    fn default() -> FlushPolicy {
        FlushPolicy::new(64, Duration::from_millis(2))
    }
}

/// Full per-endpoint serving configuration: how tiles flush, how much may
/// queue, and when the circuit breaker sheds.
///
/// Every endpoint of a [`DetectorFleet`] (and every replica of a
/// [`crate::ShardedFleet`]) is provisioned with one of these. The default
/// is production-shaped: 64-row/2 ms tiles, a 16384-row admission budget,
/// and a breaker tripping after 5 consecutive failed drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetConfig {
    /// When tiles drain.
    pub flush: FlushPolicy,
    /// How many rows may be admitted but not yet scored per endpoint.
    pub admission: AdmissionPolicy,
    /// When an endpoint's breaker trips, and what shedding looks like.
    pub breaker: BreakerPolicy,
}

impl FleetConfig {
    /// The default configuration (same as `FleetConfig::default()`).
    pub fn new() -> FleetConfig {
        FleetConfig::default()
    }

    /// Sets the flush policy.
    #[must_use]
    pub fn with_flush(mut self, flush: FlushPolicy) -> FleetConfig {
        self.flush = flush;
        self
    }

    /// Sets the admission budget.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> FleetConfig {
        self.admission = admission;
        self
    }

    /// Sets the circuit-breaker policy.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> FleetConfig {
        self.breaker = breaker;
        self
    }
}

/// A [`DetectionReport`] stamped with the endpoint version that produced it,
/// so every decision stays attributable across hot swaps and rollbacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VersionedReport {
    /// The endpoint version (1-based, monotonically increasing per endpoint)
    /// that scored the request.
    pub version: u64,
    /// The detector's full report.
    pub report: DetectionReport,
}

/// Errors of the fleet layer.
///
/// Cloneable (a failed micro-batch distributes the same error to every
/// ticket) and `#[non_exhaustive]` like the rest of the detector error
/// surface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// No endpoint with the requested name is deployed.
    UnknownEndpoint {
        /// The requested endpoint name.
        name: String,
    },
    /// `rollback` was called on an endpoint with no retired version.
    NoPreviousVersion {
        /// The endpoint name.
        name: String,
    },
    /// A scored row's feature count disagrees with the rows already queued
    /// in the endpoint's pending tile.
    WidthMismatch {
        /// Feature count of the rows already enqueued.
        expected: usize,
        /// Feature count of the rejected row.
        found: usize,
    },
    /// The detector rejected the drained batch (e.g. wrong feature count
    /// for the model). Carries the detector error's message.
    Detector {
        /// Display form of the underlying `MlError`.
        message: String,
    },
    /// Replicating a deployed detector across shard replicas failed (the
    /// codec round trip that clones the model rejected the document).
    Replication {
        /// Display form of the underlying persistence error.
        message: String,
    },
    /// The endpoint's admission budget is exhausted: `depth` rows were
    /// already admitted against a budget of `limit`. The request was shed
    /// **before** copying anything — retry after backoff, or route
    /// elsewhere.
    Overloaded {
        /// Rows admitted (queued or in a draining batch) when the request
        /// arrived.
        depth: usize,
        /// The endpoint's [`AdmissionPolicy::max_pending_rows`].
        limit: usize,
    },
    /// The endpoint's circuit breaker is Open (under
    /// [`FallbackPolicy::Reject`]): recent drains failed consecutively and
    /// the endpoint is shedding until a half-open probe succeeds.
    CircuitOpen,
    /// [`Ticket::wait_deadline`] gave up before the batch drained. The
    /// request itself is still in flight — only this waiter timed out.
    DeadlineExceeded {
        /// How long the caller was willing to wait.
        timeout: Duration,
    },
    /// A shadow operation (`promote_shadow`, and friends that require a
    /// challenger) was called on an endpoint with no challenger installed.
    NoShadow {
        /// The endpoint name.
        name: String,
    },
}

impl FleetError {
    /// The variant's **stable numeric code**, as carried in wire-protocol
    /// error frames (see `PROTOCOL.md`) and suitable for structured logs.
    ///
    /// The mapping is append-only: a code, once published, names its
    /// variant forever — new variants take fresh numbers, retired variants
    /// retire their number with them. Codes below 100 are fleet-semantic
    /// errors; the 100+ range is reserved for the transport layer
    /// (`hmd_serve::net`). The match is deliberately exhaustive (no `_`
    /// arm): adding a `FleetError` variant without assigning it a code is a
    /// compile error here and a test failure in `error_codes_are_stable`.
    pub fn code(&self) -> u16 {
        match self {
            FleetError::UnknownEndpoint { .. } => 1,
            FleetError::NoPreviousVersion { .. } => 2,
            FleetError::WidthMismatch { .. } => 3,
            FleetError::Detector { .. } => 4,
            FleetError::Replication { .. } => 5,
            FleetError::Overloaded { .. } => 6,
            FleetError::CircuitOpen => 7,
            FleetError::DeadlineExceeded { .. } => 8,
            FleetError::NoShadow { .. } => 9,
        }
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownEndpoint { name } => write!(f, "unknown endpoint `{name}`"),
            FleetError::NoPreviousVersion { name } => {
                write!(
                    f,
                    "endpoint `{name}` has no previous version to roll back to"
                )
            }
            FleetError::WidthMismatch { expected, found } => write!(
                f,
                "row width {found} does not match the pending tile width {expected}"
            ),
            FleetError::Detector { message } => write!(f, "detector error: {message}"),
            FleetError::Replication { message } => {
                write!(
                    f,
                    "replicating the detector across shards failed: {message}"
                )
            }
            FleetError::Overloaded { depth, limit } => write!(
                f,
                "endpoint overloaded: {depth} rows pending against a budget of {limit}"
            ),
            FleetError::CircuitOpen => {
                write!(f, "circuit breaker open: the endpoint is shedding requests")
            }
            FleetError::DeadlineExceeded { timeout } => {
                write!(f, "request not scored within {timeout:?}")
            }
            FleetError::NoShadow { name } => {
                write!(f, "endpoint `{name}` has no shadow challenger installed")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<hmd_ml::MlError> for FleetError {
    fn from(err: hmd_ml::MlError) -> FleetError {
        FleetError::Detector {
            message: err.to_string(),
        }
    }
}

/// Per-endpoint supervision counters: what was shed, degraded, tripped and
/// flushed — the health view a dashboard or router polls.
///
/// Degraded rows deliberately do **not** feed the endpoint's
/// [`MonitorStats`]: a synthetic escalation with infinite entropy would
/// permanently pollute the entropy extremes that describe the *model's*
/// behaviour. Supervision outcomes live here instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct HealthSnapshot {
    /// The breaker's stored state (see [`BreakerState`] for the Open →
    /// HalfOpen reporting caveat).
    pub breaker: BreakerState,
    /// Rows admitted but not yet scored (open tile + batches in flight) —
    /// the value the admission budget bounds.
    pub pending_rows: usize,
    /// Requests shed with [`FleetError::Overloaded`].
    pub shed_overload: u64,
    /// Requests shed by the breaker (rejected **or** degraded).
    pub shed_circuit: u64,
    /// Rows answered with the synthetic [`degraded_escalation`] report
    /// under [`FallbackPolicy::EscalateUncertain`].
    pub degraded_rows: u64,
    /// Times the breaker tripped (Closed/HalfOpen → Open).
    pub breaker_trips: u64,
    /// Tiles drained by the background flusher because their `max_wait`
    /// deadline expired with no caller driving them.
    pub expired_flushes: u64,
}

#[derive(Default)]
struct Health {
    shed_overload: AtomicU64,
    shed_circuit: AtomicU64,
    degraded_rows: AtomicU64,
    breaker_trips: AtomicU64,
    expired_flushes: AtomicU64,
}

/// One published version of an endpoint's detector.
///
/// The detector is held behind an `Arc` (not a `Box`) so a challenger
/// promoted out of the shadow slot can become the active version without a
/// codec round trip — the same instance that accumulated shadow statistics
/// starts serving.
pub(crate) struct Version {
    pub(crate) number: u64,
    pub(crate) detector: Arc<dyn Detector>,
}

/// The challenger riding along with an endpoint: a detector that scores
/// every batch the champion serves, into its **own** statistics.
///
/// Isolation invariant (the whole point of shadow deployment): nothing a
/// shadow produces ever reaches a caller or the champion's [`MonitorStats`].
/// The shadow pass runs *after* the champion's results are published and
/// records exclusively into this struct, so served rows are bit-identical
/// to a shadowless endpoint by construction.
struct ShadowState {
    detector: Arc<dyn Detector>,
    stats: Mutex<MonitorStats>,
    /// Rows offered to the challenger (including rows of failed attempts).
    rows: AtomicU64,
    /// Shadow batches whose scoring failed or broke the report-count
    /// contract. Champion serving is unaffected; a challenger that cannot
    /// score production traffic simply disqualifies itself here.
    errors: AtomicU64,
}

/// Observable state of an endpoint's challenger: its own monitor
/// statistics plus shadow-specific counters — the evidence a promotion
/// decision is gated on.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ShadowSnapshot {
    /// The challenger detector's human-readable description.
    pub detector: String,
    /// The challenger's own [`MonitorStats`] over every row it shadow-scored
    /// since it was installed. Never merged into the champion's statistics.
    pub stats: MonitorStats,
    /// Rows offered to the challenger (rows of failed batches included).
    pub rows: u64,
    /// Shadow batches that failed to score. A healthy challenger keeps this
    /// at 0; any other value should block promotion.
    pub errors: u64,
}

/// Result cell shared by every ticket of one micro-batch: one allocation per
/// tile, not per request.
struct BatchCell {
    /// `None` while the batch is pending or in flight; per-row results after
    /// the drain (each ticket reads its own index — tickets are moved into
    /// `wait`, so an index is claimed at most once).
    results: Mutex<Option<Vec<Result<VersionedReport, FleetError>>>>,
    ready: Condvar,
}

impl BatchCell {
    fn new() -> Arc<BatchCell> {
        Arc::new(BatchCell {
            results: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, results: Vec<Result<VersionedReport, FleetError>>) {
        let mut guard = self.results.lock_unpoisoned();
        *guard = Some(results);
        self.ready.notify_all();
    }
}

/// An open request tile: rows flattened into one buffer, the shared result
/// cell, and the version captured when the tile was opened.
///
/// The endpoint's pending slot is `Mutex<Option<OpenTile>>`: `None` means no
/// tile is open, and an `OpenTile` *by construction* holds at least the row
/// that opened it, a live cell, a pinned version, and a deadline. (The
/// previous representation kept those as `Option` fields inside an
/// always-present struct, which forced `.expect(...)` at every use site —
/// the invariant now lives in the type instead of in panics.) Taking the
/// value out of the slot hands the whole tile to the drainer; producers see
/// `None` and open a fresh one.
struct OpenTile {
    width: usize,
    rows: Vec<f64>,
    count: usize,
    cell: Arc<BatchCell>,
    version: Arc<Version>,
    deadline: Instant,
}

/// One named serving unit: a versioned detector stack, a pending micro-batch
/// tile, running monitor statistics, and its own supervision state (breaker,
/// admission counter, health counters).
///
/// Crate-visible so the sharded layer can hold N of these per logical
/// endpoint; the public API goes through [`DetectorFleet`] and
/// [`crate::ShardedFleet`].
pub(crate) struct Endpoint {
    config: FleetConfig,
    versions: Mutex<VersionStack>,
    pending: Mutex<Option<OpenTile>>,
    pub(crate) stats: Mutex<MonitorStats>,
    /// The challenger slot. `RwLock` so the per-drain existence check is a
    /// cheap shared read; the guard is only ever held to clone the `Arc`
    /// out (never across inference — see the crate's lock discipline).
    shadow: RwLock<Option<Arc<ShadowState>>>,
    breaker: Breaker,
    /// Rows admitted but not yet scored — incremented at enqueue, decremented
    /// when the drain publishes results, so the admission budget covers the
    /// open tile *and* batches in flight.
    pending_rows: AtomicUsize,
    health: Health,
    notifier: TileNotifier,
}

struct VersionStack {
    active: Arc<Version>,
    retired: Vec<Arc<Version>>,
    next: u64,
}

impl Endpoint {
    pub(crate) fn new(
        detector: Box<dyn Detector>,
        config: FleetConfig,
        notifier: TileNotifier,
    ) -> Endpoint {
        Endpoint {
            config,
            versions: Mutex::new(VersionStack {
                active: Arc::new(Version {
                    number: 1,
                    detector: Arc::from(detector),
                }),
                retired: Vec::new(),
                next: 2,
            }),
            pending: Mutex::new(None),
            stats: Mutex::new(MonitorStats::default()),
            shadow: RwLock::new(None),
            breaker: Breaker::new(config.breaker),
            pending_rows: AtomicUsize::new(0),
            health: Health::default(),
            notifier,
        }
    }

    pub(crate) fn active(&self) -> Arc<Version> {
        Arc::clone(&self.versions.lock_unpoisoned().active)
    }

    /// Rows currently queued in the open tile — the load signal the sharded
    /// layer's least-loaded router reads.
    ///
    /// This is a **racy snapshot**, not a synchronisation primitive: the
    /// tile lock is released before the value is returned, so by the time a
    /// caller acts on it the tile may have drained, grown, or been replaced.
    /// That is exactly good enough for routing ("emptier than its siblings")
    /// and dashboards; never gate correctness on it. It also counts only the
    /// open tile — rows in a batch that is draining right now are tracked by
    /// the admission counter ([`HealthSnapshot::pending_rows`]), not here.
    pub(crate) fn pending_depth(&self) -> usize {
        self.pending
            .lock_unpoisoned()
            .as_ref()
            .map_or(0, |tile| tile.count)
    }

    /// Whether a request arriving at `now` would be shed by the breaker —
    /// the time-aware signal breaker-aware routing reads (an Open breaker
    /// past its cooldown wants a probe, so it is *not* shedding).
    pub(crate) fn would_shed(&self, now: Instant) -> bool {
        self.breaker.would_shed(now)
    }

    /// The breaker's stored state.
    pub(crate) fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Supervision counters plus the breaker state, as one atomic-ish
    /// snapshot (each counter is read independently; exact cross-counter
    /// consistency is not promised).
    pub(crate) fn health(&self) -> HealthSnapshot {
        HealthSnapshot {
            breaker: self.breaker.state(),
            pending_rows: self.pending_rows.load(Ordering::SeqCst),
            shed_overload: self.health.shed_overload.load(Ordering::Relaxed),
            shed_circuit: self.health.shed_circuit.load(Ordering::Relaxed),
            degraded_rows: self.health.degraded_rows.load(Ordering::Relaxed),
            breaker_trips: self.health.breaker_trips.load(Ordering::Relaxed),
            expired_flushes: self.health.expired_flushes.load(Ordering::Relaxed),
        }
    }

    /// How many retired versions an endpoint keeps for rollback. Bounded so
    /// a long-running fleet that redeploys periodically does not retain
    /// every fitted model it ever served.
    const MAX_RETIRED: usize = 4;

    /// Publishes a new version. The swap is atomic w.r.t. `active()` and
    /// happens **before** the flush: once `deploy` returns, every new tile
    /// opens on the new version (flushing first would leave a window where
    /// a freshly opened tile pins the retiring version past the return). A
    /// pending tile keeps the version it captured when it opened, so
    /// requests already enqueued finish on the old detector; the flush
    /// drains that tile to bound how long the retired version keeps
    /// serving.
    pub(crate) fn deploy(&self, detector: Box<dyn Detector>) -> u64 {
        self.deploy_shared(Arc::from(detector))
    }

    /// [`Endpoint::deploy`] for an already-shared detector — the promotion
    /// path publishes the same instance that served as shadow.
    pub(crate) fn deploy_shared(&self, detector: Arc<dyn Detector>) -> u64 {
        let number = {
            let mut versions = self.versions.lock_unpoisoned();
            let number = versions.next;
            versions.next += 1;
            let old =
                std::mem::replace(&mut versions.active, Arc::new(Version { number, detector }));
            versions.retired.push(old);
            if versions.retired.len() > Self::MAX_RETIRED {
                versions.retired.remove(0); // drop the oldest retained model
            }
            number
        };
        self.flush();
        number
    }

    /// Installs `detector` as this endpoint's challenger, replacing (and
    /// discarding the statistics of) any previous shadow. The challenger
    /// starts with fresh [`MonitorStats`] so its evidence covers exactly
    /// its own tenure.
    pub(crate) fn set_shadow(&self, detector: Arc<dyn Detector>) {
        *self.shadow.write_unpoisoned() = Some(Arc::new(ShadowState {
            detector,
            stats: Mutex::new(MonitorStats::default()),
            rows: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }));
    }

    /// The installed challenger, if any — an `Arc` clone taken under a
    /// short read guard, never held across inference.
    fn shadow(&self) -> Option<Arc<ShadowState>> {
        self.shadow.read_unpoisoned().clone()
    }

    fn snapshot_of(shadow: &ShadowState) -> ShadowSnapshot {
        let stats = *shadow.stats.lock_unpoisoned();
        ShadowSnapshot {
            detector: shadow.detector.name(),
            stats,
            rows: shadow.rows.load(Ordering::Relaxed),
            errors: shadow.errors.load(Ordering::Relaxed),
        }
    }

    /// Observable state of the challenger (`None` when no shadow is
    /// installed).
    pub(crate) fn shadow_snapshot(&self) -> Option<ShadowSnapshot> {
        self.shadow().map(|shadow| Self::snapshot_of(&shadow))
    }

    /// Removes the challenger without promoting it, returning its final
    /// evidence.
    pub(crate) fn clear_shadow(&self) -> Option<ShadowSnapshot> {
        let taken = self.shadow.write_unpoisoned().take();
        taken.map(|shadow| Self::snapshot_of(&shadow))
    }

    /// Promotes the challenger to champion: the shadow slot empties and the
    /// **same detector instance** that accumulated the shadow evidence is
    /// published as the next version (the outgoing champion is retired for
    /// [`Endpoint::rollback`]). Returns the published version number.
    pub(crate) fn promote_shadow(&self, name: &str) -> Result<u64, FleetError> {
        let taken = self.shadow.write_unpoisoned().take();
        match taken {
            Some(shadow) => Ok(self.deploy_shared(Arc::clone(&shadow.detector))),
            None => Err(FleetError::NoShadow {
                name: name.to_string(),
            }),
        }
    }

    /// Reset-on-read window over the champion's statistics: everything
    /// recorded since the previous call (see
    /// [`MonitorStats::window_snapshot`]). Lifetime statistics are
    /// untouched.
    pub(crate) fn window_stats(&self) -> MonitorStats {
        self.stats.lock_unpoisoned().window_snapshot()
    }

    /// Scores `batch` through the challenger, if one is installed, into the
    /// challenger's own statistics. Called after the champion's results are
    /// published; infallible by design — shadow failures are evidence
    /// against the challenger, never an error on the serving path.
    fn shadow_observe(&self, batch: RowsView<'_>) {
        let Some(shadow) = self.shadow() else {
            return;
        };
        let expected = batch.rows();
        shadow.rows.fetch_add(expected as u64, Ordering::Relaxed);
        match shadow.detector.detect_rows(batch) {
            Ok(reports) if reports.len() == expected => {
                let mut stats = shadow.stats.lock_unpoisoned();
                for report in &reports {
                    stats.record(report);
                }
            }
            Ok(_) | Err(_) => {
                shadow.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn rollback(&self, name: &str) -> Result<u64, FleetError> {
        let restored = {
            let mut versions = self.versions.lock_unpoisoned();
            let restored = versions
                .retired
                .pop()
                .ok_or_else(|| FleetError::NoPreviousVersion {
                    name: name.to_string(),
                })?;
            versions.active = restored;
            versions.active.number
        };
        // Same order as deploy: the swap is already visible, the flush only
        // drains a tile that captured the pre-rollback version.
        self.flush();
        Ok(restored)
    }

    pub(crate) fn enqueue(self: &Arc<Endpoint>, features: &[f64]) -> Result<Ticket, FleetError> {
        let now = Instant::now();
        // Supervision gates run before anything is copied: first the
        // breaker (a broken endpoint sheds instantly, possibly degrading),
        // then the admission budget (a full endpoint sheds explicitly).
        if let Admission::Shed = self.breaker.admit(now) {
            self.health.shed_circuit.fetch_add(1, Ordering::Relaxed);
            return match self.breaker.policy().fallback {
                FallbackPolicy::Reject => Err(FleetError::CircuitOpen),
                FallbackPolicy::EscalateUncertain => {
                    self.health.degraded_rows.fetch_add(1, Ordering::Relaxed);
                    // A pre-resolved ticket: the degraded report is filled
                    // in before the ticket is returned, so `wait` and
                    // `try_wait` resolve immediately and the row never
                    // enters a tile (or the monitor statistics).
                    let cell = BatchCell::new();
                    cell.fill(vec![Ok(VersionedReport {
                        version: self.active().number,
                        report: degraded_escalation(),
                    })]);
                    Ok(Ticket {
                        endpoint: Arc::clone(self),
                        cell,
                        index: 0,
                        deadline: now,
                    })
                }
            };
        }
        let limit = self.config.admission.max_pending_rows;
        let depth = self.pending_rows.fetch_add(1, Ordering::SeqCst);
        if depth >= limit {
            self.pending_rows.fetch_sub(1, Ordering::SeqCst);
            self.health.shed_overload.fetch_add(1, Ordering::Relaxed);
            return Err(FleetError::Overloaded { depth, limit });
        }
        let (ticket, drained, opened) = {
            let mut pending = self.pending.lock_unpoisoned();
            let opened = pending.is_none();
            let tile = match pending.as_mut() {
                Some(tile) => {
                    if features.len() != tile.width {
                        // The row was never copied in: release its slot.
                        self.pending_rows.fetch_sub(1, Ordering::SeqCst);
                        return Err(FleetError::WidthMismatch {
                            expected: tile.width,
                            found: features.len(),
                        });
                    }
                    tile
                }
                None => {
                    // One up-front allocation per tile: draining moves the
                    // buffer out, so without this the vec would re-grow (and
                    // copy) its way up for every tile.
                    let rows = Vec::with_capacity(
                        features.len() * self.config.flush.max_batch.min(1 << 16),
                    );
                    pending.insert(OpenTile {
                        width: features.len(),
                        rows,
                        count: 0,
                        cell: BatchCell::new(),
                        version: self.active(),
                        deadline: Instant::now() + self.config.flush.max_wait,
                    })
                }
            };
            tile.rows.extend_from_slice(features);
            let index = tile.count;
            tile.count += 1;
            let full = tile.count >= self.config.flush.max_batch;
            let ticket = Ticket {
                endpoint: Arc::clone(self),
                cell: Arc::clone(&tile.cell),
                index,
                deadline: tile.deadline,
            };
            let drained = if full { pending.take() } else { None };
            (ticket, drained, opened)
        };
        if opened && drained.is_none() {
            // A fresh tile means a fresh deadline the background flusher
            // must learn about. Notified outside the tile lock — the
            // supervisor's condvar never nests inside a critical section.
            self.notifier.notify();
        }
        if let Some(tile) = drained {
            self.drain(tile);
        }
        Ok(ticket)
    }

    /// Drains whatever is pending; returns the number of rows scored.
    pub(crate) fn flush(&self) -> usize {
        let taken = self.pending.lock_unpoisoned().take();
        match taken {
            Some(tile) => {
                let rows = tile.count;
                self.drain(tile);
                rows
            }
            None => 0,
        }
    }

    /// Drains the pending tile only if its `max_wait` deadline has passed —
    /// the background flusher's entry point. Returns the rows scored (0 when
    /// the tile is absent or still young). The tile is taken under the lock
    /// and drained outside it, like every other drain path.
    pub(crate) fn flush_expired(&self, now: Instant) -> usize {
        let taken = {
            let mut pending = self.pending.lock_unpoisoned();
            match pending.as_ref() {
                Some(tile) if tile.deadline <= now => pending.take(),
                _ => None,
            }
        };
        match taken {
            Some(tile) => {
                let rows = tile.count;
                self.health.expired_flushes.fetch_add(1, Ordering::Relaxed);
                self.drain(tile);
                rows
            }
            None => 0,
        }
    }

    /// The open tile's flush deadline, if a tile is open — what the
    /// background flusher sleeps until.
    pub(crate) fn tile_deadline(&self) -> Option<Instant> {
        self.pending
            .lock_unpoisoned()
            .as_ref()
            .map(|tile| tile.deadline)
    }

    /// Scores one taken tile through the captured version's batch hot path
    /// and fulfils its tickets in request order. Runs outside every lock, so
    /// producers keep enqueueing while the batch is in flight. Every drain
    /// outcome feeds the breaker; the admission counter is released when
    /// the results are published, whatever they are.
    fn drain(&self, tile: OpenTile) {
        let OpenTile {
            width,
            rows,
            count,
            cell,
            version,
            ..
        } = tile;
        // Kept alive past the champion pass so an installed challenger can
        // score the identical rows. `None` when the champion pass failed —
        // the challenger only sees rows that were actually served, so its
        // statistics stay comparable to the champion's.
        let mut shadow_batch: Option<Matrix> = None;
        let ok = match Matrix::from_vec(count, width, rows) {
            Ok(matrix) => match version.detector.detect_rows(matrix.view()) {
                Ok(reports) if reports.len() == count => {
                    {
                        let mut stats = self.stats.lock_unpoisoned();
                        for report in &reports {
                            stats.record(report);
                        }
                    }
                    cell.fill(
                        reports
                            .into_iter()
                            .map(|report| {
                                Ok(VersionedReport {
                                    version: version.number,
                                    report,
                                })
                            })
                            .collect(),
                    );
                    shadow_batch = Some(matrix);
                    true
                }
                Ok(reports) => {
                    // A detector that returns the wrong number of reports
                    // violated its contract. Failing the whole batch keeps
                    // every ticket index in range — handing out a short
                    // vector would panic the waiter whose slot is missing
                    // and silently misalign everyone else's.
                    let error = FleetError::Detector {
                        message: format!(
                            "detector returned {} reports for a {count}-row batch",
                            reports.len()
                        ),
                    };
                    cell.fill((0..count).map(|_| Err(error.clone())).collect());
                    false
                }
                Err(err) => {
                    let error = FleetError::from(err);
                    cell.fill((0..count).map(|_| Err(error.clone())).collect());
                    false
                }
            },
            Err(err) => {
                // Unreachable by construction (every enqueue appends exactly
                // `width` values and bumps `count`), but a broken tile must
                // fail its tickets, not the serving thread.
                let error = FleetError::Detector {
                    message: err.to_string(),
                };
                cell.fill((0..count).map(|_| Err(error.clone())).collect());
                false
            }
        };
        if self.breaker.record(ok, Instant::now()) {
            self.health.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
        self.pending_rows.fetch_sub(count, Ordering::SeqCst);
        // Challenger pass, strictly after the champion's results were
        // published, the breaker fed and the admission budget released: a
        // shadow never delays a waiter, never changes what callers receive,
        // and never holds serving capacity.
        if let Some(matrix) = shadow_batch {
            self.shadow_observe(matrix.view());
        }
    }

    /// The synchronous batch path. Consults the breaker (a broken endpoint
    /// sheds batches too, and probe outcomes must feed recovery) but not
    /// the admission budget — a synchronous batch occupies no queue, it
    /// runs on the caller's thread.
    pub(crate) fn score_rows(
        &self,
        batch: RowsView<'_>,
    ) -> Result<Vec<VersionedReport>, FleetError> {
        let now = Instant::now();
        if let Admission::Shed = self.breaker.admit(now) {
            self.health.shed_circuit.fetch_add(1, Ordering::Relaxed);
            return match self.breaker.policy().fallback {
                FallbackPolicy::Reject => Err(FleetError::CircuitOpen),
                FallbackPolicy::EscalateUncertain => {
                    let rows = batch.rows();
                    self.health
                        .degraded_rows
                        .fetch_add(rows as u64, Ordering::Relaxed);
                    let version = self.active().number;
                    Ok((0..rows)
                        .map(|_| VersionedReport {
                            version,
                            report: degraded_escalation(),
                        })
                        .collect())
                }
            };
        }
        let version = self.active();
        let expected = batch.rows();
        let outcome = match version.detector.detect_rows(batch) {
            Ok(reports) if reports.len() == expected => Ok(reports),
            Ok(reports) => Err(FleetError::Detector {
                message: format!(
                    "detector returned {} reports for a {expected}-row batch",
                    reports.len()
                ),
            }),
            Err(err) => Err(FleetError::from(err)),
        };
        if self.breaker.record(outcome.is_ok(), Instant::now()) {
            self.health.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
        let reports = outcome?;
        let mut stats = self.stats.lock_unpoisoned();
        for report in &reports {
            stats.record(report);
        }
        drop(stats);
        // Same isolation as the tile path: the challenger re-scores the
        // borrowed view (it is `Copy`) into its own statistics only.
        self.shadow_observe(batch);
        Ok(reports
            .into_iter()
            .map(|report| VersionedReport {
                version: version.number,
                report,
            })
            .collect())
    }
}

/// An ordered claim on one micro-batched scoring request.
///
/// Tickets resolve in request order within their tile. [`Ticket::wait`]
/// blocks until the tile drains — and *makes it drain* once the flush
/// policy's `max_wait` deadline passes, so a lone request on an idle
/// endpoint never hangs even if the background flusher could not be
/// spawned. [`Ticket::wait_deadline`] bounds how long the caller itself is
/// willing to block.
pub struct Ticket {
    endpoint: Arc<Endpoint>,
    cell: Arc<BatchCell>,
    index: usize,
    deadline: Instant,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("index", &self.index)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the request's micro-batch has been scored and returns
    /// this request's version-stamped report.
    ///
    /// # Errors
    ///
    /// Returns the error the detector reported for the batch (every ticket
    /// of a failed batch receives a clone).
    pub fn wait(self) -> Result<VersionedReport, FleetError> {
        let mut guard = self.cell.results.lock_unpoisoned();
        loop {
            if let Some(results) = guard.as_ref() {
                return results[self.index].clone();
            }
            let now = Instant::now();
            if now < self.deadline {
                let (g, _) = unpoison(self.cell.ready.wait_timeout(guard, self.deadline - now));
                guard = g;
            } else {
                // Deadline passed with the tile still queued: this waiter
                // becomes the flusher. If another thread is already draining
                // the tile, the flush is a no-op and the condvar wait below
                // picks the results up when they land.
                drop(guard);
                self.endpoint.flush();
                guard = self.cell.results.lock_unpoisoned();
                while guard.is_none() {
                    guard = unpoison(self.cell.ready.wait(guard));
                }
            }
        }
    }

    /// Like [`Ticket::wait`], but gives up after `timeout` with
    /// [`FleetError::DeadlineExceeded`]. The batch itself is *not*
    /// cancelled — its other tickets (and the endpoint's statistics) are
    /// unaffected; only this waiter stops waiting, which is how a caller
    /// carries its own latency SLO through the queue.
    ///
    /// # Errors
    ///
    /// [`FleetError::DeadlineExceeded`] if the batch did not drain within
    /// `timeout`; otherwise whatever [`Ticket::wait`] would return.
    pub fn wait_deadline(self, timeout: Duration) -> Result<VersionedReport, FleetError> {
        let caller_deadline = Instant::now() + timeout;
        let mut flushed = false;
        let mut guard = self.cell.results.lock_unpoisoned();
        loop {
            if let Some(results) = guard.as_ref() {
                return results[self.index].clone();
            }
            let now = Instant::now();
            if now >= caller_deadline {
                return Err(FleetError::DeadlineExceeded { timeout });
            }
            if now >= self.deadline && !flushed {
                // The tile's own deadline passed first: drive the flush like
                // `wait` does, then keep waiting (bounded) for the results.
                drop(guard);
                self.endpoint.flush();
                flushed = true;
                guard = self.cell.results.lock_unpoisoned();
                continue;
            }
            let until = if flushed {
                caller_deadline
            } else {
                caller_deadline.min(self.deadline)
            };
            let (g, _) = unpoison(self.cell.ready.wait_timeout(guard, until - now));
            guard = g;
        }
    }

    /// Non-blocking probe: returns the result if the batch already drained.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` — the unconsumed ticket — while the batch is
    /// still pending, so callers can keep polling or fall back to
    /// [`Ticket::wait`].
    pub fn try_wait(self) -> Result<Result<VersionedReport, FleetError>, Ticket> {
        let guard = self.cell.results.lock_unpoisoned();
        match guard.as_ref() {
            Some(results) => Ok(results[self.index].clone()),
            None => {
                drop(guard);
                Err(self)
            }
        }
    }
}

/// A registry of named, versioned, micro-batching detector endpoints — the
/// fleet behind which every deployed pipeline serves.
///
/// See the [crate docs](crate) for the serving model. For replicated
/// endpoints with load-aware routing, layer [`crate::ShardedFleet`] on top.
///
/// Every fleet owns one background flusher thread (spawned lazily on the
/// first deploy, joined when the fleet drops) that fires `max_wait`
/// deadlines even when no caller is blocked in [`Ticket::wait`]; each
/// endpoint is individually supervised by the fleet's [`FleetConfig`]
/// (admission budget + circuit breaker), observable via
/// [`DetectorFleet::health`].
///
/// # Example
///
/// Build a config, deploy it, score a burst through the micro-batch tile,
/// then hot-swap a stricter model and roll it back:
///
/// ```
/// use hmd_core::detector::{DetectorBackend, DetectorConfig};
/// use hmd_data::{Dataset, Label, Matrix};
/// use hmd_serve::{DetectorFleet, FlushPolicy};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[
///     vec![0.1, 0.2], vec![0.2, 0.1], vec![0.9, 0.8], vec![0.8, 0.9],
/// ])?;
/// let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
/// let train = Dataset::new(x, y)?;
/// let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
///     .with_num_estimators(9);
///
/// // Deploy: version numbers are 1-based and monotone per endpoint.
/// let fleet = DetectorFleet::with_policy(FlushPolicy::new(4, Duration::from_millis(5)));
/// assert_eq!(fleet.deploy("dvfs-hmd", config.fit(&train, 3)?), 1);
///
/// // Score a burst: four single-row requests fill the 4-row tile, so the
/// // last enqueue drains the whole tile through the batch hot path.
/// let burst = [[0.15, 0.15], [0.85, 0.85], [0.2, 0.2], [0.9, 0.9]];
/// let tickets: Vec<_> = burst
///     .iter()
///     .map(|row| fleet.score("dvfs-hmd", row))
///     .collect::<Result<_, _>>()?;
/// for ticket in tickets {
///     assert_eq!(ticket.wait()?.version, 1);
/// }
///
/// // Hot swap: later traffic scores on v2, rollback restores v1.
/// assert_eq!(fleet.deploy("dvfs-hmd", config.with_num_estimators(15).fit(&train, 4)?), 2);
/// assert_eq!(fleet.rollback("dvfs-hmd")?, 1);
/// assert_eq!(fleet.stats("dvfs-hmd")?.windows, 4);
/// # Ok(())
/// # }
/// ```
pub struct DetectorFleet {
    config: FleetConfig,
    /// `Arc`ed so the background flusher can hold a `Weak` snapshot closure
    /// without keeping the fleet alive.
    endpoints: Arc<RwLock<HashMap<String, Arc<Endpoint>>>>,
    supervisor: Supervisor,
}

impl Default for DetectorFleet {
    fn default() -> DetectorFleet {
        DetectorFleet::new()
    }
}

impl Drop for DetectorFleet {
    /// Joins the background flusher, so no supervisor thread outlives the
    /// endpoints it scans.
    fn drop(&mut self) {
        self.supervisor.shutdown();
    }
}

impl DetectorFleet {
    /// An empty fleet with the default [`FleetConfig`].
    pub fn new() -> DetectorFleet {
        DetectorFleet::with_config(FleetConfig::default())
    }

    /// An empty fleet whose endpoints flush with the given policy (default
    /// admission and breaker).
    pub fn with_policy(policy: FlushPolicy) -> DetectorFleet {
        DetectorFleet::with_config(FleetConfig::default().with_flush(policy))
    }

    /// An empty fleet with an explicit full [`FleetConfig`].
    pub fn with_config(config: FleetConfig) -> DetectorFleet {
        DetectorFleet {
            config,
            endpoints: Arc::new(RwLock::new(HashMap::new())),
            supervisor: Supervisor::new(),
        }
    }

    /// The [`FlushPolicy`] every endpoint of this fleet drains under.
    pub fn policy(&self) -> FlushPolicy {
        self.config.flush
    }

    /// The fleet's full serving configuration.
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    fn endpoint(&self, name: &str) -> Result<Arc<Endpoint>, FleetError> {
        self.endpoints
            .read_unpoisoned()
            .get(name)
            .cloned()
            .ok_or_else(|| FleetError::UnknownEndpoint {
                name: name.to_string(),
            })
    }

    /// Deploys `detector` as endpoint `name` and returns the published
    /// version number (1 for a new endpoint, previous + 1 afterwards).
    ///
    /// Publishing is atomic: requests already enqueued finish on the version
    /// that accepted them, requests enqueued after this call score on the
    /// new version. The endpoint's monitor statistics persist across
    /// versions (they describe the endpoint, not the model). The last few
    /// retired versions are retained for [`DetectorFleet::rollback`]; older
    /// ones are dropped so periodic redeploys do not accumulate every model
    /// ever served. The first deploy also starts the fleet's background
    /// flusher thread.
    pub fn deploy(&self, name: &str, detector: Box<dyn Detector>) -> u64 {
        let existing = self.endpoint(name).ok();
        let version = match existing {
            Some(endpoint) => endpoint.deploy(detector),
            None => {
                let mut endpoints = self.endpoints.write_unpoisoned();
                // Double-checked under the write lock: a racing deploy of the
                // same name must version-bump, not overwrite.
                match endpoints.get(name) {
                    Some(endpoint) => endpoint.deploy(detector),
                    None => {
                        endpoints.insert(
                            name.to_string(),
                            Arc::new(Endpoint::new(
                                detector,
                                self.config,
                                self.supervisor.notifier(),
                            )),
                        );
                        1
                    }
                }
            }
        };
        let endpoints = Arc::downgrade(&self.endpoints);
        self.supervisor.ensure_spawned(move || {
            endpoints
                .upgrade()
                .map(|map| map.read_unpoisoned().values().cloned().collect())
        });
        version
    }

    /// Restores endpoint `name` to the version retired by the latest
    /// [`DetectorFleet::deploy`], returning the restored version number.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::NoPreviousVersion`] when nothing was ever retired.
    pub fn rollback(&self, name: &str) -> Result<u64, FleetError> {
        self.endpoint(name)?.rollback(name)
    }

    /// The currently active version number of endpoint `name`.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn active_version(&self, name: &str) -> Result<u64, FleetError> {
        Ok(self.endpoint(name)?.active().number)
    }

    /// The active detector's human-readable description.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn detector_name(&self, name: &str) -> Result<String, FleetError> {
        Ok(self.endpoint(name)?.active().detector.name())
    }

    /// Names of every deployed endpoint, sorted.
    pub fn endpoints(&self) -> Vec<String> {
        let mut names: Vec<String> = self.endpoints.read_unpoisoned().keys().cloned().collect();
        names.sort();
        names
    }

    /// Enqueues one signature into endpoint `name`'s micro-batch tile and
    /// returns an ordered [`Ticket`] for the result. The row is copied into
    /// the tile (the only copy on the request path); the tile drains through
    /// the detector's zero-copy batch view when the flush policy fires.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::WidthMismatch`] when `features` disagrees with rows
    /// already queued in the tile, [`FleetError::Overloaded`] when the
    /// endpoint's admission budget is exhausted, and
    /// [`FleetError::CircuitOpen`] when its breaker is shedding under
    /// [`FallbackPolicy::Reject`] (under
    /// [`FallbackPolicy::EscalateUncertain`] the ticket resolves immediately
    /// to a synthetic escalation instead).
    pub fn score(&self, name: &str, features: &[f64]) -> Result<Ticket, FleetError> {
        self.endpoint(name)?.enqueue(features)
    }

    /// Scores a whole borrowed batch view directly on the active version —
    /// the batch-first fleet path, bypassing the micro-batch queue but still
    /// stamping versions and feeding the endpoint's statistics (and its
    /// circuit breaker; the admission budget does not apply, since a
    /// synchronous batch occupies no queue).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::CircuitOpen`] while the breaker sheds (under
    /// [`FallbackPolicy::Reject`]), or the detector's error for mismatched
    /// feature counts.
    pub fn score_batch<'a>(
        &self,
        name: &str,
        batch: impl Into<RowsView<'a>>,
    ) -> Result<Vec<VersionedReport>, FleetError> {
        self.endpoint(name)?.score_rows(batch.into())
    }

    /// Drains endpoint `name`'s pending tile immediately, returning how many
    /// rows were scored (0 when the tile was empty — an empty flush is a
    /// no-op, not an error).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn flush(&self, name: &str) -> Result<usize, FleetError> {
        Ok(self.endpoint(name)?.flush())
    }

    /// Snapshot of endpoint `name`'s running monitor statistics (windows,
    /// accept/escalate counts, entropy extremes) across every version it has
    /// served. Degraded (breaker-fallback) rows are never recorded here —
    /// see [`HealthSnapshot`].
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn stats(&self, name: &str) -> Result<MonitorStats, FleetError> {
        Ok(*self.endpoint(name)?.stats.lock_unpoisoned())
    }

    /// Endpoint `name`'s supervision health: breaker state, admitted rows,
    /// shed/degraded/trip/expired-flush counters.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn health(&self, name: &str) -> Result<HealthSnapshot, FleetError> {
        Ok(self.endpoint(name)?.health())
    }

    /// Endpoint `name`'s circuit-breaker state (also available via
    /// [`DetectorFleet::health`]).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn breaker_state(&self, name: &str) -> Result<BreakerState, FleetError> {
        Ok(self.endpoint(name)?.breaker_state())
    }

    /// Resets endpoint `name`'s monitor statistics (e.g. at an epoch
    /// boundary) without touching the deployed detector or its versions.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn reset_stats(&self, name: &str) -> Result<(), FleetError> {
        *self.endpoint(name)?.stats.lock_unpoisoned() = MonitorStats::default();
        Ok(())
    }

    /// Reset-on-read window over endpoint `name`'s statistics: everything
    /// recorded since the previous `window_stats` call, as a standalone
    /// [`MonitorStats`]. Lifetime statistics ([`DetectorFleet::stats`]) are
    /// untouched — this is the feed a drift detector polls at its own
    /// cadence.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn window_stats(&self, name: &str) -> Result<MonitorStats, FleetError> {
        Ok(self.endpoint(name)?.window_stats())
    }

    /// Installs `detector` as endpoint `name`'s **challenger**: from now on
    /// it scores every batch the champion serves, into its own
    /// [`MonitorStats`], while callers keep receiving exactly the
    /// champion's reports — served rows are bit-identical to a shadowless
    /// endpoint by construction. Replaces (and discards the evidence of)
    /// any previous challenger.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn deploy_shadow(&self, name: &str, detector: Box<dyn Detector>) -> Result<(), FleetError> {
        self.endpoint(name)?.set_shadow(Arc::from(detector));
        Ok(())
    }

    /// The challenger's accumulated evidence (`None` when no shadow is
    /// installed): its own monitor statistics, rows offered, and failed
    /// shadow batches.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn shadow_stats(&self, name: &str) -> Result<Option<ShadowSnapshot>, FleetError> {
        Ok(self.endpoint(name)?.shadow_snapshot())
    }

    /// Removes endpoint `name`'s challenger without promoting it, returning
    /// its final evidence (`None` when no shadow was installed). The
    /// champion is untouched.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn clear_shadow(&self, name: &str) -> Result<Option<ShadowSnapshot>, FleetError> {
        Ok(self.endpoint(name)?.clear_shadow())
    }

    /// Promotes endpoint `name`'s challenger to champion: the same detector
    /// instance that accumulated the shadow evidence is published as the
    /// next version, the outgoing champion is retired for
    /// [`DetectorFleet::rollback`], and the shadow slot empties. Returns
    /// the published version number.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::NoShadow`] when no challenger is installed.
    pub fn promote_shadow(&self, name: &str) -> Result<u64, FleetError> {
        self.endpoint(name)?.promote_shadow(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_core::detector::{DetectorBackend, DetectorConfig, DetectorExt};
    use hmd_data::{Dataset, Label};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let c = if malware { 2.0 } else { -2.0 };
            rows.push(vec![
                c + rng.gen_range(-0.8..0.8),
                c + rng.gen_range(-0.8..0.8),
            ]);
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    fn trained(num_estimators: usize, seed: u64) -> Box<dyn Detector> {
        DetectorConfig::trusted(DetectorBackend::decision_tree())
            .with_num_estimators(num_estimators)
            .fit(&blobs(120, 7), seed)
            .expect("training succeeds")
    }

    /// The published wire-protocol mapping (PROTOCOL.md): every variant, its
    /// code, and the uniqueness of the codes. `FleetError::code`'s match has
    /// no wildcard arm, so a new variant fails compilation there; this test
    /// is the second gate — it fails if a code is changed or reused, which
    /// the exhaustive `match` alone cannot catch.
    #[test]
    fn error_codes_are_stable() {
        let published: &[(FleetError, u16)] = &[
            (
                FleetError::UnknownEndpoint {
                    name: "ep".to_string(),
                },
                1,
            ),
            (
                FleetError::NoPreviousVersion {
                    name: "ep".to_string(),
                },
                2,
            ),
            (
                FleetError::WidthMismatch {
                    expected: 2,
                    found: 3,
                },
                3,
            ),
            (
                FleetError::Detector {
                    message: String::new(),
                },
                4,
            ),
            (
                FleetError::Replication {
                    message: String::new(),
                },
                5,
            ),
            (FleetError::Overloaded { depth: 8, limit: 8 }, 6),
            (FleetError::CircuitOpen, 7),
            (
                FleetError::DeadlineExceeded {
                    timeout: Duration::from_millis(1),
                },
                8,
            ),
            (
                FleetError::NoShadow {
                    name: "ep".to_string(),
                },
                9,
            ),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (error, expected) in published {
            assert_eq!(
                error.code(),
                *expected,
                "published code for {error:?} must never change"
            );
            assert!(seen.insert(*expected), "code {expected} assigned twice");
            assert!(
                *expected < 100,
                "fleet-semantic codes stay below the transport range (100+)"
            );
        }
    }

    #[test]
    fn deploy_rollback_walk_the_version_stack() {
        let fleet = DetectorFleet::new();
        assert_eq!(fleet.deploy("ep", trained(5, 1)), 1);
        assert_eq!(fleet.active_version("ep").unwrap(), 1);
        assert_eq!(fleet.deploy("ep", trained(7, 2)), 2);
        assert_eq!(fleet.active_version("ep").unwrap(), 2);
        assert!(fleet.detector_name("ep").unwrap().starts_with("trusted[7x"));
        assert_eq!(fleet.rollback("ep").unwrap(), 1);
        assert!(fleet.detector_name("ep").unwrap().starts_with("trusted[5x"));
        // A fresh deploy after rollback keeps version numbers monotone.
        assert_eq!(fleet.deploy("ep", trained(9, 3)), 3);
        // v3 retired v1 again; rolling back twice bottoms the stack out.
        assert_eq!(fleet.rollback("ep").unwrap(), 1);
        assert_eq!(
            fleet.rollback("ep").unwrap_err(),
            FleetError::NoPreviousVersion { name: "ep".into() },
            "rolling back past the stack bottom errors"
        );
    }

    #[test]
    fn retired_versions_are_bounded_for_rollback() {
        let fleet = DetectorFleet::new();
        for i in 0..8u64 {
            fleet.deploy("ep", trained(5, 100 + i));
        }
        assert_eq!(fleet.active_version("ep").unwrap(), 8);
        // Only the bounded tail of the version stack can be restored.
        for expected in [7, 6, 5, 4] {
            assert_eq!(fleet.rollback("ep").unwrap(), expected);
        }
        assert!(matches!(
            fleet.rollback("ep"),
            Err(FleetError::NoPreviousVersion { .. })
        ));
    }

    #[test]
    fn unknown_endpoints_error_uniformly() {
        let fleet = DetectorFleet::new();
        let missing = FleetError::UnknownEndpoint {
            name: "ghost".into(),
        };
        assert_eq!(fleet.score("ghost", &[0.0]).unwrap_err(), missing);
        assert_eq!(fleet.flush("ghost").unwrap_err(), missing);
        assert_eq!(fleet.stats("ghost").unwrap_err(), missing);
        assert_eq!(fleet.health("ghost").unwrap_err(), missing);
        assert_eq!(fleet.rollback("ghost").unwrap_err(), missing);
        assert_eq!(fleet.active_version("ghost").unwrap_err(), missing);
        assert!(fleet.endpoints().is_empty());
    }

    #[test]
    fn flush_policy_clamps_both_degenerate_edges() {
        // max_batch == 0 could never drain; it clamps to direct scoring.
        let batchless = FlushPolicy::new(0, Duration::from_millis(2));
        assert_eq!(batchless.max_batch, 1);
        assert_eq!(batchless.max_wait, Duration::from_millis(2));
        // max_wait == 0 would open every tile already expired; it clamps to
        // the documented floor.
        let waitless = FlushPolicy::new(64, Duration::ZERO);
        assert_eq!(waitless.max_batch, 64);
        assert_eq!(waitless.max_wait, FlushPolicy::MIN_WAIT);
        // Non-degenerate values pass through untouched.
        let sane = FlushPolicy::new(32, Duration::from_millis(7));
        assert_eq!(sane.max_batch, 32);
        assert_eq!(sane.max_wait, Duration::from_millis(7));
    }

    #[test]
    fn width_mismatch_is_rejected_at_enqueue_time() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(8, Duration::from_secs(5)));
        fleet.deploy("ep", trained(5, 4));
        let _first = fleet.score("ep", &[0.1, 0.2]).unwrap();
        let err = fleet.score("ep", &[0.1, 0.2, 0.3]).unwrap_err();
        assert_eq!(
            err,
            FleetError::WidthMismatch {
                expected: 2,
                found: 3
            }
        );
        // The mismatched row was not enqueued; the tile drains cleanly and
        // the admission slot the rejected row briefly held was released.
        assert_eq!(fleet.flush("ep").unwrap(), 1);
        assert_eq!(fleet.health("ep").unwrap().pending_rows, 0);
    }

    #[test]
    fn detector_errors_fan_out_to_every_ticket() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(2, Duration::from_secs(5)));
        fleet.deploy("ep", trained(5, 5));
        // Wrong width for the model (trained on 2 features) but consistent
        // within the tile: the error surfaces per ticket, not as a panic.
        let a = fleet.score("ep", &[0.1, 0.2, 0.3]).unwrap();
        let b = fleet.score("ep", &[0.4, 0.5, 0.6]).unwrap();
        assert!(matches!(a.wait(), Err(FleetError::Detector { .. })));
        assert!(matches!(b.wait(), Err(FleetError::Detector { .. })));
        assert_eq!(fleet.stats("ep").unwrap().windows, 0);
    }

    #[test]
    fn score_batch_stamps_versions_and_feeds_stats() {
        let fleet = DetectorFleet::new();
        let detector = trained(9, 6);
        let test = blobs(20, 8);
        let direct = detector.detect_batch(test.features()).unwrap();
        fleet.deploy("ep", detector);
        let scored = fleet.score_batch("ep", test.features()).unwrap();
        assert_eq!(scored.len(), direct.len());
        for (s, d) in scored.iter().zip(&direct) {
            assert_eq!(s.version, 1);
            assert_eq!(&s.report, d);
        }
        assert_eq!(fleet.stats("ep").unwrap().windows, 20);
        fleet.reset_stats("ep").unwrap();
        assert_eq!(fleet.stats("ep").unwrap(), MonitorStats::default());
    }

    #[test]
    fn try_wait_resolves_only_after_a_drain() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(16, Duration::from_secs(5)));
        fleet.deploy("ep", trained(5, 9));
        let ticket = fleet.score("ep", &[0.5, -0.5]).unwrap();
        let ticket = match ticket.try_wait() {
            Err(ticket) => ticket,
            Ok(_) => panic!("tile has not drained yet"),
        };
        assert_eq!(fleet.flush("ep").unwrap(), 1);
        let report = ticket.try_wait().expect("drained").expect("scores");
        assert_eq!(report.version, 1);
    }

    #[test]
    fn wait_deadline_times_out_then_a_plain_wait_still_resolves() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(16, Duration::from_secs(30)));
        fleet.deploy("ep", trained(5, 10));
        let impatient = fleet.score("ep", &[0.5, -0.5]).unwrap();
        let patient = fleet.score("ep", &[0.6, -0.6]).unwrap();
        // The caller's deadline fires long before the 30 s tile deadline.
        let err = impatient
            .wait_deadline(Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(
            err,
            FleetError::DeadlineExceeded {
                timeout: Duration::from_millis(20)
            }
        );
        // The batch was not cancelled: a flush drains both rows and the
        // surviving ticket reads its result normally.
        assert_eq!(fleet.flush("ep").unwrap(), 2);
        assert!(patient.wait_deadline(Duration::from_secs(5)).is_ok());
        assert_eq!(fleet.stats("ep").unwrap().windows, 2);
    }

    #[test]
    fn admission_budget_sheds_with_overloaded() {
        let config = FleetConfig::default()
            .with_flush(FlushPolicy::new(64, Duration::from_secs(30)))
            .with_admission(AdmissionPolicy::new(3));
        let fleet = DetectorFleet::with_config(config);
        fleet.deploy("ep", trained(5, 11));
        let tickets: Vec<Ticket> = (0..3)
            .map(|_| fleet.score("ep", &[0.5, -0.5]).unwrap())
            .collect();
        let err = fleet.score("ep", &[0.5, -0.5]).unwrap_err();
        assert_eq!(err, FleetError::Overloaded { depth: 3, limit: 3 });
        let health = fleet.health("ep").unwrap();
        assert_eq!(health.pending_rows, 3);
        assert_eq!(health.shed_overload, 1);
        // Draining releases the budget; the endpoint admits again.
        assert_eq!(fleet.flush("ep").unwrap(), 3);
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        assert_eq!(fleet.health("ep").unwrap().pending_rows, 0);
        assert!(fleet.score("ep", &[0.5, -0.5]).is_ok());
    }

    #[test]
    fn shadow_scores_same_tiles_without_touching_served_rows_or_champion_stats() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(4, Duration::from_secs(5)));
        let champion = trained(5, 30);
        let challenger = trained(9, 31);
        let test = blobs(8, 32);

        // Reference run: the same champion, no shadow anywhere near it.
        let reference = DetectorFleet::with_policy(FlushPolicy::new(4, Duration::from_secs(5)));
        reference.deploy("ep", trained(5, 30));
        let expected_reports = reference.score_batch("ep", test.features()).unwrap();
        let expected_direct = trained(9, 31).detect_batch(test.features()).unwrap();

        fleet.deploy("ep", champion);
        assert_eq!(fleet.shadow_stats("ep").unwrap(), None);
        fleet.deploy_shadow("ep", challenger).unwrap();

        // Tile path: two 4-row tiles drain; shadow sees both.
        let tickets: Vec<Ticket> = test
            .features()
            .view()
            .iter_rows()
            .map(|row| fleet.score("ep", row).unwrap())
            .collect();
        let served: Vec<VersionedReport> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        // Served rows are bit-identical to the shadowless fleet.
        for (got, want) in served.iter().zip(&expected_reports) {
            assert_eq!(got, want);
        }
        // Champion stats unchanged by the shadow; challenger recorded the
        // same rows into its own block, matching a direct challenger run.
        assert_eq!(fleet.stats("ep").unwrap(), reference.stats("ep").unwrap());
        let snapshot = fleet.shadow_stats("ep").unwrap().expect("shadow present");
        assert_eq!(snapshot.rows, 8);
        assert_eq!(snapshot.errors, 0);
        assert_eq!(snapshot.stats.windows, 8);
        let expected_escalations = expected_direct
            .iter()
            .filter(|r| r.decision.is_escalation())
            .count();
        assert_eq!(snapshot.stats.escalated, expected_escalations);
        assert!(snapshot.detector.starts_with("trusted[9x"));

        // Promotion publishes the challenger as v2 and empties the slot.
        assert_eq!(fleet.promote_shadow("ep").unwrap(), 2);
        assert_eq!(fleet.shadow_stats("ep").unwrap(), None);
        assert!(fleet.detector_name("ep").unwrap().starts_with("trusted[9x"));
        let promoted = fleet.score_batch("ep", test.features()).unwrap();
        for (got, want) in promoted.iter().zip(&expected_direct) {
            assert_eq!(got.version, 2);
            assert_eq!(&got.report, want);
        }
        // Rollback restores the pre-promotion champion.
        assert_eq!(fleet.rollback("ep").unwrap(), 1);
        assert!(fleet.detector_name("ep").unwrap().starts_with("trusted[5x"));

        // Promotion without a shadow is the typed code-9 error.
        assert_eq!(
            fleet.promote_shadow("ep").unwrap_err(),
            FleetError::NoShadow { name: "ep".into() }
        );
        assert_eq!(fleet.clear_shadow("ep").unwrap(), None);
    }

    #[test]
    fn window_stats_reset_on_read_without_touching_lifetime() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(4, Duration::from_secs(5)));
        fleet.deploy("ep", trained(5, 33));
        let test = blobs(12, 34);
        fleet
            .score_batch("ep", test.features().rows_view(0..8))
            .unwrap();
        let first = fleet.window_stats("ep").unwrap();
        assert_eq!(first.windows, 8);
        // Lifetime untouched; a second read covers only newer rows.
        assert_eq!(fleet.stats("ep").unwrap().windows, 8);
        fleet
            .score_batch("ep", test.features().rows_view(8..12))
            .unwrap();
        assert_eq!(fleet.window_stats("ep").unwrap().windows, 4);
        assert_eq!(fleet.window_stats("ep").unwrap().windows, 0);
        assert_eq!(fleet.stats("ep").unwrap().windows, 12);
    }

    #[test]
    fn failing_shadow_counts_errors_and_never_harms_serving() {
        struct BrokenShadow;
        impl Detector for BrokenShadow {
            fn name(&self) -> String {
                "broken-shadow".to_string()
            }
            fn entropy_threshold(&self) -> f64 {
                0.5
            }
            fn detect_rows(
                &self,
                _rows: RowsView<'_>,
            ) -> Result<Vec<DetectionReport>, hmd_ml::MlError> {
                Err(hmd_ml::MlError::ContractViolation {
                    message: "shadow fault".to_string(),
                })
            }
        }
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(2, Duration::from_secs(5)));
        fleet.deploy("ep", trained(5, 35));
        fleet.deploy_shadow("ep", Box::new(BrokenShadow)).unwrap();
        let test = blobs(4, 36);
        let reports = fleet.score_batch("ep", test.features()).unwrap();
        assert_eq!(reports.len(), 4);
        let snapshot = fleet.shadow_stats("ep").unwrap().expect("shadow present");
        assert_eq!(snapshot.rows, 4);
        assert_eq!(snapshot.errors, 1);
        assert_eq!(snapshot.stats.windows, 0);
        // The champion's breaker and stats never saw the shadow failure.
        assert_eq!(fleet.stats("ep").unwrap().windows, 4);
        assert_eq!(
            fleet.breaker_state("ep").unwrap(),
            crate::BreakerState::Closed
        );
    }

    #[test]
    fn poisoned_endpoint_locks_recover_end_to_end() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(4, Duration::from_secs(5)));
        fleet.deploy("ep", trained(5, 21));
        let endpoint = fleet.endpoint("ep").unwrap();
        // Poison each internal lock from a panicking thread: the stats
        // mutex, the pending-tile mutex, and the versions mutex.
        let poison = Arc::clone(&endpoint);
        let _ = std::thread::spawn(move || {
            let _guard = poison.stats.lock().unwrap();
            panic!("poison the stats lock");
        })
        .join();
        let poison = Arc::clone(&endpoint);
        let _ = std::thread::spawn(move || {
            let _guard = poison.pending.lock().unwrap();
            panic!("poison the pending lock");
        })
        .join();
        let poison = Arc::clone(&endpoint);
        let _ = std::thread::spawn(move || {
            let _guard = poison.versions.lock().unwrap();
            panic!("poison the versions lock");
        })
        .join();
        assert!(endpoint.stats.lock().is_err(), "stats lock is poisoned");
        assert!(endpoint.pending.lock().is_err(), "pending lock is poisoned");
        // Every serving path still works through the unpoisoning helpers.
        let ticket = fleet.score("ep", &[0.1, 0.2]).unwrap();
        assert_eq!(fleet.flush("ep").unwrap(), 1);
        assert!(ticket.wait().is_ok());
        assert_eq!(fleet.stats("ep").unwrap().windows, 1);
        assert_eq!(fleet.active_version("ep").unwrap(), 1);
    }
}
