//! The single-replica fleet: named, versioned, micro-batching detector
//! endpoints.
//!
//! This module is the substrate of the serving crate. [`DetectorFleet`] maps
//! endpoint names to [`Endpoint`]s; each endpoint owns a versioned stack of
//! `Box<dyn Detector>` models, its own [`MonitorStats`], and one pending
//! micro-batch tile. The sharded layer in [`crate::shard`] replicates these
//! endpoints N ways and routes between them — it reuses every type here
//! rather than reimplementing the tile machinery.

use crate::sync::{unpoison, LockExt, RwLockExt};
use hmd_core::detector::{Detector, MonitorStats};
use hmd_core::trusted::DetectionReport;
use hmd_data::{Matrix, RowsView};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// When a per-endpoint request tile drains through the batch hot path.
///
/// A tile flushes as soon as **either** bound is hit: it collected
/// `max_batch` rows, or the oldest enqueued request has waited `max_wait`.
/// Large `max_batch` + small `max_wait` trades a bounded latency floor for
/// batch-sized throughput; `max_batch == 1` degenerates to direct scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Maximum rows collected before the enqueueing caller drains the tile.
    pub max_batch: usize,
    /// Maximum time the oldest request waits before its [`Ticket::wait`]
    /// drains the tile itself.
    pub max_wait: Duration,
}

impl FlushPolicy {
    /// A policy flushing at `max_batch` rows or after `max_wait`.
    pub fn new(max_batch: usize, max_wait: Duration) -> FlushPolicy {
        FlushPolicy {
            max_batch: max_batch.max(1),
            max_wait,
        }
    }
}

impl Default for FlushPolicy {
    /// 64 rows (one flat-engine tile) or 2 ms, whichever comes first.
    fn default() -> FlushPolicy {
        FlushPolicy::new(64, Duration::from_millis(2))
    }
}

/// A [`DetectionReport`] stamped with the endpoint version that produced it,
/// so every decision stays attributable across hot swaps and rollbacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VersionedReport {
    /// The endpoint version (1-based, monotonically increasing per endpoint)
    /// that scored the request.
    pub version: u64,
    /// The detector's full report.
    pub report: DetectionReport,
}

/// Errors of the fleet layer.
///
/// Cloneable (a failed micro-batch distributes the same error to every
/// ticket) and `#[non_exhaustive]` like the rest of the detector error
/// surface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// No endpoint with the requested name is deployed.
    UnknownEndpoint {
        /// The requested endpoint name.
        name: String,
    },
    /// `rollback` was called on an endpoint with no retired version.
    NoPreviousVersion {
        /// The endpoint name.
        name: String,
    },
    /// A scored row's feature count disagrees with the rows already queued
    /// in the endpoint's pending tile.
    WidthMismatch {
        /// Feature count of the rows already enqueued.
        expected: usize,
        /// Feature count of the rejected row.
        found: usize,
    },
    /// The detector rejected the drained batch (e.g. wrong feature count
    /// for the model). Carries the detector error's message.
    Detector {
        /// Display form of the underlying `MlError`.
        message: String,
    },
    /// Replicating a deployed detector across shard replicas failed (the
    /// codec round trip that clones the model rejected the document).
    Replication {
        /// Display form of the underlying persistence error.
        message: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownEndpoint { name } => write!(f, "unknown endpoint `{name}`"),
            FleetError::NoPreviousVersion { name } => {
                write!(
                    f,
                    "endpoint `{name}` has no previous version to roll back to"
                )
            }
            FleetError::WidthMismatch { expected, found } => write!(
                f,
                "row width {found} does not match the pending tile width {expected}"
            ),
            FleetError::Detector { message } => write!(f, "detector error: {message}"),
            FleetError::Replication { message } => {
                write!(
                    f,
                    "replicating the detector across shards failed: {message}"
                )
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<hmd_ml::MlError> for FleetError {
    fn from(err: hmd_ml::MlError) -> FleetError {
        FleetError::Detector {
            message: err.to_string(),
        }
    }
}

/// One published version of an endpoint's detector.
pub(crate) struct Version {
    pub(crate) number: u64,
    pub(crate) detector: Box<dyn Detector>,
}

/// Result cell shared by every ticket of one micro-batch: one allocation per
/// tile, not per request.
struct BatchCell {
    /// `None` while the batch is pending or in flight; per-row results after
    /// the drain (each ticket reads its own index — tickets are moved into
    /// `wait`, so an index is claimed at most once).
    results: Mutex<Option<Vec<Result<VersionedReport, FleetError>>>>,
    ready: Condvar,
}

impl BatchCell {
    fn new() -> Arc<BatchCell> {
        Arc::new(BatchCell {
            results: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, results: Vec<Result<VersionedReport, FleetError>>) {
        let mut guard = self.results.lock_unpoisoned();
        *guard = Some(results);
        self.ready.notify_all();
    }
}

/// An open request tile: rows flattened into one buffer, the shared result
/// cell, and the version captured when the tile was opened.
///
/// The endpoint's pending slot is `Mutex<Option<OpenTile>>`: `None` means no
/// tile is open, and an `OpenTile` *by construction* holds at least the row
/// that opened it, a live cell, a pinned version, and a deadline. (The
/// previous representation kept those as `Option` fields inside an
/// always-present struct, which forced `.expect(...)` at every use site —
/// the invariant now lives in the type instead of in panics.) Taking the
/// value out of the slot hands the whole tile to the drainer; producers see
/// `None` and open a fresh one.
struct OpenTile {
    width: usize,
    rows: Vec<f64>,
    count: usize,
    cell: Arc<BatchCell>,
    version: Arc<Version>,
    deadline: Instant,
}

/// One named serving unit: a versioned detector stack, a pending micro-batch
/// tile, and running monitor statistics.
///
/// Crate-visible so the sharded layer can hold N of these per logical
/// endpoint; the public API goes through [`DetectorFleet`] and
/// [`crate::ShardedFleet`].
pub(crate) struct Endpoint {
    policy: FlushPolicy,
    versions: Mutex<VersionStack>,
    pending: Mutex<Option<OpenTile>>,
    pub(crate) stats: Mutex<MonitorStats>,
}

struct VersionStack {
    active: Arc<Version>,
    retired: Vec<Arc<Version>>,
    next: u64,
}

impl Endpoint {
    pub(crate) fn new(detector: Box<dyn Detector>, policy: FlushPolicy) -> Endpoint {
        Endpoint {
            policy,
            versions: Mutex::new(VersionStack {
                active: Arc::new(Version {
                    number: 1,
                    detector,
                }),
                retired: Vec::new(),
                next: 2,
            }),
            pending: Mutex::new(None),
            stats: Mutex::new(MonitorStats::default()),
        }
    }

    pub(crate) fn active(&self) -> Arc<Version> {
        Arc::clone(&self.versions.lock_unpoisoned().active)
    }

    /// Rows currently queued in the open tile — the load signal the sharded
    /// layer's least-loaded router reads. A racy snapshot by design: routing
    /// only needs "emptier than its siblings", not an exact count.
    pub(crate) fn pending_depth(&self) -> usize {
        self.pending
            .lock_unpoisoned()
            .as_ref()
            .map_or(0, |tile| tile.count)
    }

    /// How many retired versions an endpoint keeps for rollback. Bounded so
    /// a long-running fleet that redeploys periodically does not retain
    /// every fitted model it ever served.
    const MAX_RETIRED: usize = 4;

    /// Publishes a new version. The swap is atomic w.r.t. `active()` and
    /// happens **before** the flush: once `deploy` returns, every new tile
    /// opens on the new version (flushing first would leave a window where
    /// a freshly opened tile pins the retiring version past the return). A
    /// pending tile keeps the version it captured when it opened, so
    /// requests already enqueued finish on the old detector; the flush
    /// drains that tile to bound how long the retired version keeps
    /// serving.
    pub(crate) fn deploy(&self, detector: Box<dyn Detector>) -> u64 {
        let number = {
            let mut versions = self.versions.lock_unpoisoned();
            let number = versions.next;
            versions.next += 1;
            let old =
                std::mem::replace(&mut versions.active, Arc::new(Version { number, detector }));
            versions.retired.push(old);
            if versions.retired.len() > Self::MAX_RETIRED {
                versions.retired.remove(0); // drop the oldest retained model
            }
            number
        };
        self.flush();
        number
    }

    pub(crate) fn rollback(&self, name: &str) -> Result<u64, FleetError> {
        let restored = {
            let mut versions = self.versions.lock_unpoisoned();
            let restored = versions
                .retired
                .pop()
                .ok_or_else(|| FleetError::NoPreviousVersion {
                    name: name.to_string(),
                })?;
            versions.active = restored;
            versions.active.number
        };
        // Same order as deploy: the swap is already visible, the flush only
        // drains a tile that captured the pre-rollback version.
        self.flush();
        Ok(restored)
    }

    pub(crate) fn enqueue(self: &Arc<Endpoint>, features: &[f64]) -> Result<Ticket, FleetError> {
        let (ticket, drained) = {
            let mut pending = self.pending.lock_unpoisoned();
            let tile = match pending.as_mut() {
                Some(tile) => {
                    if features.len() != tile.width {
                        return Err(FleetError::WidthMismatch {
                            expected: tile.width,
                            found: features.len(),
                        });
                    }
                    tile
                }
                None => {
                    // One up-front allocation per tile: draining moves the
                    // buffer out, so without this the vec would re-grow (and
                    // copy) its way up for every tile.
                    let rows =
                        Vec::with_capacity(features.len() * self.policy.max_batch.min(1 << 16));
                    pending.insert(OpenTile {
                        width: features.len(),
                        rows,
                        count: 0,
                        cell: BatchCell::new(),
                        version: self.active(),
                        deadline: Instant::now() + self.policy.max_wait,
                    })
                }
            };
            tile.rows.extend_from_slice(features);
            let index = tile.count;
            tile.count += 1;
            let full = tile.count >= self.policy.max_batch;
            let ticket = Ticket {
                endpoint: Arc::clone(self),
                cell: Arc::clone(&tile.cell),
                index,
                deadline: tile.deadline,
            };
            let drained = if full { pending.take() } else { None };
            (ticket, drained)
        };
        if let Some(tile) = drained {
            self.drain(tile);
        }
        Ok(ticket)
    }

    /// Drains whatever is pending; returns the number of rows scored.
    pub(crate) fn flush(&self) -> usize {
        let taken = self.pending.lock_unpoisoned().take();
        match taken {
            Some(tile) => {
                let rows = tile.count;
                self.drain(tile);
                rows
            }
            None => 0,
        }
    }

    /// Scores one taken tile through the captured version's batch hot path
    /// and fulfils its tickets in request order. Runs outside every lock, so
    /// producers keep enqueueing while the batch is in flight.
    fn drain(&self, tile: OpenTile) {
        let matrix = match Matrix::from_vec(tile.count, tile.width, tile.rows) {
            Ok(matrix) => matrix,
            Err(err) => {
                // Unreachable by construction (every enqueue appends exactly
                // `width` values and bumps `count`), but a broken tile must
                // fail its tickets, not the serving thread.
                let error = FleetError::Detector {
                    message: err.to_string(),
                };
                tile.cell
                    .fill((0..tile.count).map(|_| Err(error.clone())).collect());
                return;
            }
        };
        match tile.version.detector.detect_rows(matrix.view()) {
            Ok(reports) => {
                let mut stats = self.stats.lock_unpoisoned();
                for report in &reports {
                    stats.record(report);
                }
                drop(stats);
                tile.cell.fill(
                    reports
                        .into_iter()
                        .map(|report| {
                            Ok(VersionedReport {
                                version: tile.version.number,
                                report,
                            })
                        })
                        .collect(),
                );
            }
            Err(err) => {
                let error = FleetError::from(err);
                tile.cell
                    .fill((0..tile.count).map(|_| Err(error.clone())).collect());
            }
        }
    }

    pub(crate) fn score_rows(
        &self,
        batch: RowsView<'_>,
    ) -> Result<Vec<VersionedReport>, FleetError> {
        let version = self.active();
        let reports = version.detector.detect_rows(batch)?;
        let mut stats = self.stats.lock_unpoisoned();
        for report in &reports {
            stats.record(report);
        }
        drop(stats);
        Ok(reports
            .into_iter()
            .map(|report| VersionedReport {
                version: version.number,
                report,
            })
            .collect())
    }
}

/// An ordered claim on one micro-batched scoring request.
///
/// Tickets resolve in request order within their tile. [`Ticket::wait`]
/// blocks until the tile drains — and *makes it drain* once the flush
/// policy's `max_wait` deadline passes, so a lone request on an idle
/// endpoint never hangs.
pub struct Ticket {
    endpoint: Arc<Endpoint>,
    cell: Arc<BatchCell>,
    index: usize,
    deadline: Instant,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("index", &self.index)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the request's micro-batch has been scored and returns
    /// this request's version-stamped report.
    ///
    /// # Errors
    ///
    /// Returns the error the detector reported for the batch (every ticket
    /// of a failed batch receives a clone).
    pub fn wait(self) -> Result<VersionedReport, FleetError> {
        let mut guard = self.cell.results.lock_unpoisoned();
        loop {
            if let Some(results) = guard.as_ref() {
                return results[self.index].clone();
            }
            let now = Instant::now();
            if now < self.deadline {
                let (g, _) = unpoison(self.cell.ready.wait_timeout(guard, self.deadline - now));
                guard = g;
            } else {
                // Deadline passed with the tile still queued: this waiter
                // becomes the flusher. If another thread is already draining
                // the tile, the flush is a no-op and the condvar wait below
                // picks the results up when they land.
                drop(guard);
                self.endpoint.flush();
                guard = self.cell.results.lock_unpoisoned();
                while guard.is_none() {
                    guard = unpoison(self.cell.ready.wait(guard));
                }
            }
        }
    }

    /// Non-blocking probe: returns the result if the batch already drained.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` — the unconsumed ticket — while the batch is
    /// still pending, so callers can keep polling or fall back to
    /// [`Ticket::wait`].
    pub fn try_wait(self) -> Result<Result<VersionedReport, FleetError>, Ticket> {
        let guard = self.cell.results.lock_unpoisoned();
        match guard.as_ref() {
            Some(results) => Ok(results[self.index].clone()),
            None => {
                drop(guard);
                Err(self)
            }
        }
    }
}

/// A registry of named, versioned, micro-batching detector endpoints — the
/// fleet behind which every deployed pipeline serves.
///
/// See the [crate docs](crate) for the serving model. For replicated
/// endpoints with load-aware routing, layer [`crate::ShardedFleet`] on top.
///
/// # Example
///
/// Build a config, deploy it, score a burst through the micro-batch tile,
/// then hot-swap a stricter model and roll it back:
///
/// ```
/// use hmd_core::detector::{DetectorBackend, DetectorConfig};
/// use hmd_data::{Dataset, Label, Matrix};
/// use hmd_serve::{DetectorFleet, FlushPolicy};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[
///     vec![0.1, 0.2], vec![0.2, 0.1], vec![0.9, 0.8], vec![0.8, 0.9],
/// ])?;
/// let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
/// let train = Dataset::new(x, y)?;
/// let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
///     .with_num_estimators(9);
///
/// // Deploy: version numbers are 1-based and monotone per endpoint.
/// let fleet = DetectorFleet::with_policy(FlushPolicy::new(4, Duration::from_millis(5)));
/// assert_eq!(fleet.deploy("dvfs-hmd", config.fit(&train, 3)?), 1);
///
/// // Score a burst: four single-row requests fill the 4-row tile, so the
/// // last enqueue drains the whole tile through the batch hot path.
/// let burst = [[0.15, 0.15], [0.85, 0.85], [0.2, 0.2], [0.9, 0.9]];
/// let tickets: Vec<_> = burst
///     .iter()
///     .map(|row| fleet.score("dvfs-hmd", row))
///     .collect::<Result<_, _>>()?;
/// for ticket in tickets {
///     assert_eq!(ticket.wait()?.version, 1);
/// }
///
/// // Hot swap: later traffic scores on v2, rollback restores v1.
/// assert_eq!(fleet.deploy("dvfs-hmd", config.with_num_estimators(15).fit(&train, 4)?), 2);
/// assert_eq!(fleet.rollback("dvfs-hmd")?, 1);
/// assert_eq!(fleet.stats("dvfs-hmd")?.windows, 4);
/// # Ok(())
/// # }
/// ```
pub struct DetectorFleet {
    policy: FlushPolicy,
    endpoints: RwLock<HashMap<String, Arc<Endpoint>>>,
}

impl Default for DetectorFleet {
    fn default() -> DetectorFleet {
        DetectorFleet::new()
    }
}

impl DetectorFleet {
    /// An empty fleet with the default [`FlushPolicy`].
    pub fn new() -> DetectorFleet {
        DetectorFleet::with_policy(FlushPolicy::default())
    }

    /// An empty fleet whose endpoints flush with the given policy.
    pub fn with_policy(policy: FlushPolicy) -> DetectorFleet {
        DetectorFleet {
            policy,
            endpoints: RwLock::new(HashMap::new()),
        }
    }

    /// The [`FlushPolicy`] every endpoint of this fleet drains under.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    fn endpoint(&self, name: &str) -> Result<Arc<Endpoint>, FleetError> {
        self.endpoints
            .read_unpoisoned()
            .get(name)
            .cloned()
            .ok_or_else(|| FleetError::UnknownEndpoint {
                name: name.to_string(),
            })
    }

    /// Deploys `detector` as endpoint `name` and returns the published
    /// version number (1 for a new endpoint, previous + 1 afterwards).
    ///
    /// Publishing is atomic: requests already enqueued finish on the version
    /// that accepted them, requests enqueued after this call score on the
    /// new version. The endpoint's monitor statistics persist across
    /// versions (they describe the endpoint, not the model). The last few
    /// retired versions are retained for [`DetectorFleet::rollback`]; older
    /// ones are dropped so periodic redeploys do not accumulate every model
    /// ever served.
    pub fn deploy(&self, name: &str, detector: Box<dyn Detector>) -> u64 {
        let existing = self.endpoint(name).ok();
        match existing {
            Some(endpoint) => endpoint.deploy(detector),
            None => {
                let mut endpoints = self.endpoints.write_unpoisoned();
                // Double-checked under the write lock: a racing deploy of the
                // same name must version-bump, not overwrite.
                match endpoints.get(name) {
                    Some(endpoint) => endpoint.deploy(detector),
                    None => {
                        endpoints.insert(
                            name.to_string(),
                            Arc::new(Endpoint::new(detector, self.policy)),
                        );
                        1
                    }
                }
            }
        }
    }

    /// Restores endpoint `name` to the version retired by the latest
    /// [`DetectorFleet::deploy`], returning the restored version number.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::NoPreviousVersion`] when nothing was ever retired.
    pub fn rollback(&self, name: &str) -> Result<u64, FleetError> {
        self.endpoint(name)?.rollback(name)
    }

    /// The currently active version number of endpoint `name`.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn active_version(&self, name: &str) -> Result<u64, FleetError> {
        Ok(self.endpoint(name)?.active().number)
    }

    /// The active detector's human-readable description.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn detector_name(&self, name: &str) -> Result<String, FleetError> {
        Ok(self.endpoint(name)?.active().detector.name())
    }

    /// Names of every deployed endpoint, sorted.
    pub fn endpoints(&self) -> Vec<String> {
        let mut names: Vec<String> = self.endpoints.read_unpoisoned().keys().cloned().collect();
        names.sort();
        names
    }

    /// Enqueues one signature into endpoint `name`'s micro-batch tile and
    /// returns an ordered [`Ticket`] for the result. The row is copied into
    /// the tile (the only copy on the request path); the tile drains through
    /// the detector's zero-copy batch view when the flush policy fires.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::WidthMismatch`] when `features` disagrees with rows
    /// already queued in the tile.
    pub fn score(&self, name: &str, features: &[f64]) -> Result<Ticket, FleetError> {
        self.endpoint(name)?.enqueue(features)
    }

    /// Scores a whole borrowed batch view directly on the active version —
    /// the batch-first fleet path, bypassing the micro-batch queue but still
    /// stamping versions and feeding the endpoint's statistics.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names, or the detector's
    /// error for mismatched feature counts.
    pub fn score_batch<'a>(
        &self,
        name: &str,
        batch: impl Into<RowsView<'a>>,
    ) -> Result<Vec<VersionedReport>, FleetError> {
        self.endpoint(name)?.score_rows(batch.into())
    }

    /// Drains endpoint `name`'s pending tile immediately, returning how many
    /// rows were scored (0 when the tile was empty — an empty flush is a
    /// no-op, not an error).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn flush(&self, name: &str) -> Result<usize, FleetError> {
        Ok(self.endpoint(name)?.flush())
    }

    /// Snapshot of endpoint `name`'s running monitor statistics (windows,
    /// accept/escalate counts, entropy extremes) across every version it has
    /// served.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn stats(&self, name: &str) -> Result<MonitorStats, FleetError> {
        Ok(*self.endpoint(name)?.stats.lock_unpoisoned())
    }

    /// Resets endpoint `name`'s monitor statistics (e.g. at an epoch
    /// boundary) without touching the deployed detector or its versions.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn reset_stats(&self, name: &str) -> Result<(), FleetError> {
        *self.endpoint(name)?.stats.lock_unpoisoned() = MonitorStats::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_core::detector::{DetectorBackend, DetectorConfig, DetectorExt};
    use hmd_data::{Dataset, Label};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let c = if malware { 2.0 } else { -2.0 };
            rows.push(vec![
                c + rng.gen_range(-0.8..0.8),
                c + rng.gen_range(-0.8..0.8),
            ]);
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    fn trained(num_estimators: usize, seed: u64) -> Box<dyn Detector> {
        DetectorConfig::trusted(DetectorBackend::decision_tree())
            .with_num_estimators(num_estimators)
            .fit(&blobs(120, 7), seed)
            .expect("training succeeds")
    }

    #[test]
    fn deploy_rollback_walk_the_version_stack() {
        let fleet = DetectorFleet::new();
        assert_eq!(fleet.deploy("ep", trained(5, 1)), 1);
        assert_eq!(fleet.active_version("ep").unwrap(), 1);
        assert_eq!(fleet.deploy("ep", trained(7, 2)), 2);
        assert_eq!(fleet.active_version("ep").unwrap(), 2);
        assert!(fleet.detector_name("ep").unwrap().starts_with("trusted[7x"));
        assert_eq!(fleet.rollback("ep").unwrap(), 1);
        assert!(fleet.detector_name("ep").unwrap().starts_with("trusted[5x"));
        // A fresh deploy after rollback keeps version numbers monotone.
        assert_eq!(fleet.deploy("ep", trained(9, 3)), 3);
        // v3 retired v1 again; rolling back twice bottoms the stack out.
        assert_eq!(fleet.rollback("ep").unwrap(), 1);
        assert_eq!(
            fleet.rollback("ep").unwrap_err(),
            FleetError::NoPreviousVersion { name: "ep".into() },
            "rolling back past the stack bottom errors"
        );
    }

    #[test]
    fn retired_versions_are_bounded_for_rollback() {
        let fleet = DetectorFleet::new();
        for i in 0..8u64 {
            fleet.deploy("ep", trained(5, 100 + i));
        }
        assert_eq!(fleet.active_version("ep").unwrap(), 8);
        // Only the bounded tail of the version stack can be restored.
        for expected in [7, 6, 5, 4] {
            assert_eq!(fleet.rollback("ep").unwrap(), expected);
        }
        assert!(matches!(
            fleet.rollback("ep"),
            Err(FleetError::NoPreviousVersion { .. })
        ));
    }

    #[test]
    fn unknown_endpoints_error_uniformly() {
        let fleet = DetectorFleet::new();
        let missing = FleetError::UnknownEndpoint {
            name: "ghost".into(),
        };
        assert_eq!(fleet.score("ghost", &[0.0]).unwrap_err(), missing);
        assert_eq!(fleet.flush("ghost").unwrap_err(), missing);
        assert_eq!(fleet.stats("ghost").unwrap_err(), missing);
        assert_eq!(fleet.rollback("ghost").unwrap_err(), missing);
        assert_eq!(fleet.active_version("ghost").unwrap_err(), missing);
        assert!(fleet.endpoints().is_empty());
    }

    #[test]
    fn width_mismatch_is_rejected_at_enqueue_time() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(8, Duration::from_secs(5)));
        fleet.deploy("ep", trained(5, 4));
        let _first = fleet.score("ep", &[0.1, 0.2]).unwrap();
        let err = fleet.score("ep", &[0.1, 0.2, 0.3]).unwrap_err();
        assert_eq!(
            err,
            FleetError::WidthMismatch {
                expected: 2,
                found: 3
            }
        );
        // The mismatched row was not enqueued; the tile drains cleanly.
        assert_eq!(fleet.flush("ep").unwrap(), 1);
    }

    #[test]
    fn detector_errors_fan_out_to_every_ticket() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(2, Duration::from_secs(5)));
        fleet.deploy("ep", trained(5, 5));
        // Wrong width for the model (trained on 2 features) but consistent
        // within the tile: the error surfaces per ticket, not as a panic.
        let a = fleet.score("ep", &[0.1, 0.2, 0.3]).unwrap();
        let b = fleet.score("ep", &[0.4, 0.5, 0.6]).unwrap();
        assert!(matches!(a.wait(), Err(FleetError::Detector { .. })));
        assert!(matches!(b.wait(), Err(FleetError::Detector { .. })));
        assert_eq!(fleet.stats("ep").unwrap().windows, 0);
    }

    #[test]
    fn score_batch_stamps_versions_and_feeds_stats() {
        let fleet = DetectorFleet::new();
        let detector = trained(9, 6);
        let test = blobs(20, 8);
        let direct = detector.detect_batch(test.features()).unwrap();
        fleet.deploy("ep", detector);
        let scored = fleet.score_batch("ep", test.features()).unwrap();
        assert_eq!(scored.len(), direct.len());
        for (s, d) in scored.iter().zip(&direct) {
            assert_eq!(s.version, 1);
            assert_eq!(&s.report, d);
        }
        assert_eq!(fleet.stats("ep").unwrap().windows, 20);
        fleet.reset_stats("ep").unwrap();
        assert_eq!(fleet.stats("ep").unwrap(), MonitorStats::default());
    }

    #[test]
    fn try_wait_resolves_only_after_a_drain() {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(16, Duration::from_secs(5)));
        fleet.deploy("ep", trained(5, 9));
        let ticket = fleet.score("ep", &[0.5, -0.5]).unwrap();
        let ticket = match ticket.try_wait() {
            Err(ticket) => ticket,
            Ok(_) => panic!("tile has not drained yet"),
        };
        assert_eq!(fleet.flush("ep").unwrap(), 1);
        let report = ticket.try_wait().expect("drained").expect("scores");
        assert_eq!(report.version, 1);
    }
}
