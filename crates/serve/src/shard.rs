//! Sharded replica serving: N micro-batching replicas per endpoint with
//! load-aware, breaker-aware routing.
//!
//! A [`crate::DetectorFleet`] endpoint funnels every concurrent scorer
//! through **one** pending tile behind one mutex. That is the right shape
//! for a single producer, but a burst of independent scorers serialises on
//! the tile lock and shares one flush deadline. [`ShardedFleet`] replicates
//! each endpoint across `N` shards — every replica is a full
//! [`crate::fleet::Endpoint`]: its own versioned detector stack, its own
//! tile, its own [`MonitorStats`], its own admission budget and circuit
//! breaker — and routes each request to one replica with a pluggable
//! [`RoutePolicy`].
//!
//! Replicas are **clones through the persistence codec**: `deploy` saves the
//! detector once and restores it per replica, which the PR-1 save/load
//! guarantee makes bit-identical. Scoring a row on any replica therefore
//! produces the same report bits — sharding changes *where* a request is
//! queued, never *what* it scores (the seeded equivalence test in
//! `tests/shard.rs` enforces this). Administrative operations (`deploy`,
//! `rollback`) fan out to every replica in lock-step under a per-endpoint
//! generation counter: replicas apply the same admin history in the same
//! order, so a given version number names the same model bits on every
//! replica and all replicas agree on the active version between fan-outs.
//! *During* a fan-out, requests routed to a not-yet-swapped replica are
//! stamped with the outgoing version — the same transitional semantics as
//! rows already queued in a tile when a hot swap lands.
//!
//! For detectors that cannot round-trip the codec (notably the
//! fault-injection wrapper [`crate::FaultInjector`], whose plan must never
//! persist), [`ShardedFleet::deploy_replicas`] accepts one pre-built
//! detector per replica instead — the caller owns the "replicas are
//! equivalent" guarantee that codec cloning otherwise provides.

use crate::fleet::Endpoint;
use crate::supervisor::Supervisor;
use crate::sync::{LockExt, RwLockExt};
use crate::{AdmissionPolicy, BreakerPolicy};
use crate::{
    BreakerState, DetectorFleet, FleetConfig, FleetError, FlushPolicy, HealthSnapshot,
    ShadowSnapshot, Ticket, VersionedReport,
};
use hmd_core::detector::{load, save, Detector, MonitorStats};
use hmd_core::trusted::DetectionReport;
use hmd_data::RowsView;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// How a sharded endpoint picks the replica that queues a request.
///
/// Routing never changes *what* a request scores — replicas are
/// bit-identical codec clones on the same version — only which tile it
/// waits in, which controls contention and batching behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutePolicy {
    /// Rotate through the replicas with an atomic cursor. Spreads load
    /// evenly regardless of per-request cost; the default.
    RoundRobin,
    /// Route to the replica with the fewest rows in its open tile (ties go
    /// to the lowest index), skipping replicas whose circuit breaker is
    /// shedding — a tripped replica's tile is always empty, and routing by
    /// depth alone would aim the whole burst at the brokenest replica.
    /// When every replica is shedding, falls back to round-robin (so
    /// cooldown probes and fallback policies still see traffic). Reads a
    /// racy snapshot of each tile's depth — good enough to steer bursts
    /// away from backed-up replicas.
    LeastLoaded,
    /// Route [`ShardedFleet::score_keyed`] requests by the caller's hash
    /// key, so one session's requests always share a replica (and therefore
    /// micro-batch together). Keyless [`ShardedFleet::score`] calls fall
    /// back to round-robin under this policy.
    KeyAffinity,
}

/// Configuration of a [`ShardedFleet`]: replica count, routing policy and
/// the per-replica serving policies (flush, admission, breaker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Replicas per endpoint (clamped to at least 1).
    pub replicas: usize,
    /// How requests pick a replica.
    pub policy: RoutePolicy,
    /// The [`FlushPolicy`] every replica's tile drains under.
    pub flush: FlushPolicy,
    /// The admission budget of **each replica** (the fleet-wide budget is
    /// `replicas * max_pending_rows`).
    pub admission: AdmissionPolicy,
    /// The circuit-breaker policy of each replica — replicas are supervised
    /// independently, so one broken replica sheds while its siblings serve.
    pub breaker: BreakerPolicy,
}

impl ShardConfig {
    /// `replicas` round-robin shards with default flush, admission and
    /// breaker policies.
    pub fn new(replicas: usize) -> ShardConfig {
        ShardConfig {
            replicas: replicas.max(1),
            policy: RoutePolicy::RoundRobin,
            flush: FlushPolicy::default(),
            admission: AdmissionPolicy::default(),
            breaker: BreakerPolicy::default(),
        }
    }

    /// Sets the routing policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RoutePolicy) -> ShardConfig {
        self.policy = policy;
        self
    }

    /// Sets the per-replica flush policy.
    #[must_use]
    pub fn with_flush(mut self, flush: FlushPolicy) -> ShardConfig {
        self.flush = flush;
        self
    }

    /// Sets the per-replica admission budget.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> ShardConfig {
        self.admission = admission;
        self
    }

    /// Sets the per-replica circuit-breaker policy.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> ShardConfig {
        self.breaker = breaker;
        self
    }

    /// The per-replica [`FleetConfig`] this shard config provisions.
    fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            flush: self.flush,
            admission: self.admission,
            breaker: self.breaker,
        }
    }
}

/// A [`VersionedReport`] plus the replica that scored it.
///
/// The `replica` field is pure attribution: replicas are bit-identical
/// clones, so `version` and `report` are independent of which replica
/// served the request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedReport {
    /// Index (0-based) of the replica whose tile scored the request.
    pub replica: usize,
    /// The endpoint version that scored the request. The lock-stepped
    /// generation counter makes a given number name the same model bits on
    /// every replica; mid-fan-out requests may still land on a replica the
    /// deploy has not reached yet and carry the outgoing version.
    pub version: u64,
    /// The detector's full report.
    pub report: DetectionReport,
}

impl ShardedReport {
    fn new(replica: usize, scored: VersionedReport) -> ShardedReport {
        ShardedReport {
            replica,
            version: scored.version,
            report: scored.report,
        }
    }
}

/// An ordered claim on one sharded scoring request: a [`Ticket`] on the
/// replica the router chose, remembering which replica that was.
pub struct ShardTicket {
    replica: usize,
    ticket: Ticket,
}

impl std::fmt::Debug for ShardTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardTicket")
            .field("replica", &self.replica)
            .field("ticket", &self.ticket)
            .finish()
    }
}

impl ShardTicket {
    /// The replica index the request was routed to.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Blocks until the request's micro-batch has been scored on its
    /// replica; same drain-on-deadline semantics as [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// Returns the error the replica's detector reported for the batch.
    pub fn wait(self) -> Result<ShardedReport, FleetError> {
        let replica = self.replica;
        self.ticket
            .wait()
            .map(|scored| ShardedReport::new(replica, scored))
    }

    /// Like [`ShardTicket::wait`], but gives up after `timeout` with
    /// [`FleetError::DeadlineExceeded`]; same semantics as
    /// [`Ticket::wait_deadline`].
    ///
    /// # Errors
    ///
    /// [`FleetError::DeadlineExceeded`] if the replica's batch did not
    /// drain within `timeout`, otherwise the batch's own outcome.
    pub fn wait_deadline(self, timeout: std::time::Duration) -> Result<ShardedReport, FleetError> {
        let replica = self.replica;
        self.ticket
            .wait_deadline(timeout)
            .map(|scored| ShardedReport::new(replica, scored))
    }

    /// Non-blocking probe: returns the result if the replica's batch
    /// already drained.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` — the unconsumed ticket — while the batch is
    /// still pending.
    pub fn try_wait(self) -> Result<Result<ShardedReport, FleetError>, ShardTicket> {
        let replica = self.replica;
        match self.ticket.try_wait() {
            Ok(result) => Ok(result.map(|scored| ShardedReport::new(replica, scored))),
            Err(ticket) => Err(ShardTicket { replica, ticket }),
        }
    }
}

/// One logical endpoint of a [`ShardedFleet`]: `N` replica [`Endpoint`]s,
/// the routing state, and the generation counter that keeps the replicas'
/// version stamps in lock-step.
struct ShardedEndpoint {
    replicas: Vec<Arc<Endpoint>>,
    policy: RoutePolicy,
    /// Round-robin cursor; relaxed ordering is fine, routing needs no
    /// happens-before edges, only eventual spread.
    cursor: AtomicUsize,
    /// The endpoint generation: the version every replica currently serves.
    /// Administrative fan-out runs under this lock so concurrent `deploy`
    /// and `rollback` calls cannot interleave their per-replica walks (which
    /// would let replicas disagree on version numbers).
    generation: Mutex<u64>,
}

impl ShardedEndpoint {
    fn route(&self, key: Option<u64>) -> usize {
        let n = self.replicas.len();
        if n == 1 {
            return 0;
        }
        if let Some(key) = key {
            // Stickiness beats breaker-awareness: a keyed session stays on
            // its replica even while that replica sheds, so the caller sees
            // a consistent fallback instead of silently migrating sessions.
            return (splitmix64(key) % n as u64) as usize;
        }
        match self.policy {
            RoutePolicy::LeastLoaded => {
                let now = Instant::now();
                let mut best: Option<(usize, usize)> = None;
                for (index, replica) in self.replicas.iter().enumerate() {
                    if replica.would_shed(now) {
                        continue; // shedding replicas don't take new load
                    }
                    let depth = replica.pending_depth();
                    if best.is_none_or(|(_, best_depth)| depth < best_depth) {
                        best = Some((index, depth));
                        if depth == 0 {
                            break; // nothing is emptier than an empty tile
                        }
                    }
                }
                match best {
                    Some((index, _)) => index,
                    // Every replica is shedding: rotate so probes (and
                    // degraded fallbacks) spread instead of hammering
                    // replica 0.
                    None => self.cursor.fetch_add(1, Ordering::Relaxed) % n,
                }
            }
            // KeyAffinity without a key has nothing to stick to.
            RoutePolicy::RoundRobin | RoutePolicy::KeyAffinity => {
                self.cursor.fetch_add(1, Ordering::Relaxed) % n
            }
        }
    }

    /// Fans a deploy out to every replica in lock-step and returns the new
    /// generation. `detectors` must hold one bit-identical clone per
    /// replica.
    fn deploy(&self, detectors: Vec<Box<dyn Detector>>) -> u64 {
        debug_assert_eq!(detectors.len(), self.replicas.len());
        let mut generation = self.generation.lock_unpoisoned();
        let mut number = 0;
        for (replica, detector) in self.replicas.iter().zip(detectors) {
            let published = replica.deploy(detector);
            debug_assert!(
                number == 0 || published == number,
                "replicas must publish the same version"
            );
            number = published;
        }
        *generation = number;
        number
    }

    fn rollback(&self, name: &str) -> Result<u64, FleetError> {
        let mut generation = self.generation.lock_unpoisoned();
        // Replicas share one administrative history, so either every replica
        // has a retired version or none does; probing the first cannot leave
        // the endpoint half rolled back.
        let mut number = 0;
        for replica in &self.replicas {
            let restored = replica.rollback(name)?;
            debug_assert!(
                number == 0 || restored == number,
                "replicas must restore the same version"
            );
            number = restored;
        }
        *generation = number;
        Ok(number)
    }

    /// Installs one challenger clone per replica, in lock-step under the
    /// generation lock (shadow installation is administrative: it must not
    /// interleave with a concurrent deploy/rollback/promote walk).
    fn deploy_shadow(&self, detectors: Vec<Box<dyn Detector>>) {
        debug_assert_eq!(detectors.len(), self.replicas.len());
        let _generation = self.generation.lock_unpoisoned();
        for (replica, detector) in self.replicas.iter().zip(detectors) {
            replica.set_shadow(Arc::from(detector));
        }
    }

    /// Promotes every replica's challenger in lock-step. All-or-nothing:
    /// shadow mutations all run under the generation lock, so either every
    /// replica has a challenger or none does — the pre-check cannot race a
    /// half-installed shadow.
    fn promote_shadow(&self, name: &str) -> Result<u64, FleetError> {
        let mut generation = self.generation.lock_unpoisoned();
        if !self
            .replicas
            .iter()
            .all(|replica| replica.shadow_snapshot().is_some())
        {
            return Err(FleetError::NoShadow {
                name: name.to_string(),
            });
        }
        let mut number = 0;
        for replica in &self.replicas {
            let published = replica.promote_shadow(name)?;
            debug_assert!(
                number == 0 || published == number,
                "replicas must publish the same version"
            );
            number = published;
        }
        *generation = number;
        Ok(number)
    }

    /// Clears every replica's challenger in lock-step, returning the merged
    /// final evidence (`None` when no shadow was installed).
    fn clear_shadow(&self) -> Option<ShadowSnapshot> {
        let _generation = self.generation.lock_unpoisoned();
        merge_shadow_snapshots(self.replicas.iter().map(|replica| replica.clear_shadow()))
    }
}

/// Merges per-replica shadow snapshots into one endpoint-wide view:
/// statistics merge through [`MonitorStats::merge`], row/error counters
/// add, and the (identical) challenger name is taken from the first
/// replica. `None` when no replica has a challenger.
fn merge_shadow_snapshots(
    snapshots: impl Iterator<Item = Option<ShadowSnapshot>>,
) -> Option<ShadowSnapshot> {
    let mut merged: Option<ShadowSnapshot> = None;
    for snapshot in snapshots.flatten() {
        match merged.as_mut() {
            None => merged = Some(snapshot),
            Some(merged) => {
                merged.stats.merge(&snapshot.stats);
                merged.rows += snapshot.rows;
                merged.errors += snapshot.errors;
            }
        }
    }
    merged
}

/// Deterministic 64-bit mixer (splitmix64 finaliser) turning caller keys
/// into well-spread replica choices even when keys are sequential.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fleet whose endpoints are replicated `N` ways with load-aware routing —
/// the scale-out layer above [`DetectorFleet`].
///
/// Each deployed endpoint holds [`ShardConfig::replicas`] bit-identical
/// copies of the detector (cloned through the persistence codec), each with
/// its own micro-batch tile, [`MonitorStats`], admission budget and circuit
/// breaker; [`ShardedFleet::score`] routes every request to one replica by
/// [`RoutePolicy`], and [`ShardedFleet::stats`] merges the per-replica
/// statistics back into one endpoint-wide view. `deploy` and `rollback` fan
/// out to all replicas in lock-step, so a version number names the same
/// model bits everywhere (requests that race the fan-out itself finish on
/// the version their replica was serving when they enqueued). Like
/// [`DetectorFleet`], a sharded fleet owns one background flusher thread
/// covering every replica's tile deadline.
///
/// # Example
///
/// Build a config, deploy it across three replicas, score a burst with
/// session affinity, hot-swap a new version, and roll it back:
///
/// ```
/// use hmd_core::detector::{DetectorBackend, DetectorConfig};
/// use hmd_data::{Dataset, Label, Matrix};
/// use hmd_serve::{RoutePolicy, ShardConfig, ShardedFleet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[
///     vec![0.1, 0.2], vec![0.2, 0.1], vec![0.9, 0.8], vec![0.8, 0.9],
/// ])?;
/// let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
/// let train = Dataset::new(x, y)?;
/// let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
///     .with_num_estimators(9);
///
/// let fleet = ShardedFleet::with_config(
///     ShardConfig::new(3).with_policy(RoutePolicy::KeyAffinity),
/// );
/// assert_eq!(fleet.deploy("dvfs-hmd", config.fit(&train, 3)?)?, 1);
/// assert_eq!(fleet.replicas("dvfs-hmd")?, 3);
///
/// // One session key -> one replica, so a session's burst batches together.
/// let session = 0xFEED;
/// let tickets: Vec<_> = [[0.15, 0.15], [0.85, 0.85], [0.2, 0.2]]
///     .iter()
///     .map(|row| fleet.score_keyed("dvfs-hmd", session, row))
///     .collect::<Result<_, _>>()?;
/// fleet.flush("dvfs-hmd")?;
/// let mut replicas = std::collections::HashSet::new();
/// for ticket in tickets {
///     let scored = ticket.wait()?;
///     assert_eq!(scored.version, 1);
///     replicas.insert(scored.replica);
/// }
/// assert_eq!(replicas.len(), 1, "sticky sessions share a replica");
///
/// // Hot swap fans out to every replica; stats merge across replicas.
/// assert_eq!(fleet.deploy("dvfs-hmd", config.with_num_estimators(15).fit(&train, 4)?)?, 2);
/// assert_eq!(fleet.rollback("dvfs-hmd")?, 1);
/// assert_eq!(fleet.stats("dvfs-hmd")?.windows, 3);
/// # Ok(())
/// # }
/// ```
pub struct ShardedFleet {
    config: ShardConfig,
    /// `Arc`ed so the background flusher can hold a `Weak` snapshot closure
    /// without keeping the fleet alive.
    endpoints: Arc<RwLock<HashMap<String, Arc<ShardedEndpoint>>>>,
    supervisor: Supervisor,
}

impl Drop for ShardedFleet {
    /// Joins the background flusher, so no supervisor thread outlives the
    /// replicas it scans.
    fn drop(&mut self) {
        self.supervisor.shutdown();
    }
}

impl ShardedFleet {
    /// A fleet with `replicas` round-robin shards per endpoint and default
    /// per-replica policies.
    pub fn new(replicas: usize) -> ShardedFleet {
        ShardedFleet::with_config(ShardConfig::new(replicas))
    }

    /// A fleet with an explicit [`ShardConfig`].
    pub fn with_config(config: ShardConfig) -> ShardedFleet {
        ShardedFleet {
            config: ShardConfig {
                replicas: config.replicas.max(1),
                ..config
            },
            endpoints: Arc::new(RwLock::new(HashMap::new())),
            supervisor: Supervisor::new(),
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> ShardConfig {
        self.config
    }

    fn endpoint(&self, name: &str) -> Result<Arc<ShardedEndpoint>, FleetError> {
        self.endpoints
            .read_unpoisoned()
            .get(name)
            .cloned()
            .ok_or_else(|| FleetError::UnknownEndpoint {
                name: name.to_string(),
            })
    }

    /// Clones `detector` once per replica through the persistence codec.
    /// The first clone slot reuses the original box, so a 1-replica fleet
    /// never serialises at all.
    fn replicate(&self, detector: Box<dyn Detector>) -> Result<Vec<Box<dyn Detector>>, FleetError> {
        let extra = self.config.replicas - 1;
        let mut detectors = Vec::with_capacity(self.config.replicas);
        if extra > 0 {
            let document = save(detector.as_ref()).map_err(|err| FleetError::Replication {
                message: err.to_string(),
            })?;
            for _ in 0..extra {
                detectors.push(load(&document).map_err(|err| FleetError::Replication {
                    message: err.to_string(),
                })?);
            }
        }
        detectors.push(detector);
        Ok(detectors)
    }

    /// Publishes one prepared detector per replica as endpoint `name`,
    /// creating the endpoint on first deploy, and (lazily) starts the
    /// fleet's background flusher.
    fn publish(&self, name: &str, detectors: Vec<Box<dyn Detector>>) -> u64 {
        let version = match self.endpoint(name).ok() {
            Some(endpoint) => endpoint.deploy(detectors),
            None => {
                let mut endpoints = self.endpoints.write_unpoisoned();
                // Double-checked under the write lock: a racing deploy of the
                // same name must version-bump, not overwrite.
                match endpoints.get(name) {
                    Some(endpoint) => endpoint.deploy(detectors),
                    None => {
                        let config = self.config.fleet_config();
                        let replicas = detectors
                            .into_iter()
                            .map(|detector| {
                                Arc::new(Endpoint::new(
                                    detector,
                                    config,
                                    self.supervisor.notifier(),
                                ))
                            })
                            .collect();
                        endpoints.insert(
                            name.to_string(),
                            Arc::new(ShardedEndpoint {
                                replicas,
                                policy: self.config.policy,
                                cursor: AtomicUsize::new(0),
                                generation: Mutex::new(1),
                            }),
                        );
                        1
                    }
                }
            }
        };
        let endpoints = Arc::downgrade(&self.endpoints);
        self.supervisor.ensure_spawned(move || {
            endpoints.upgrade().map(|map| {
                map.read_unpoisoned()
                    .values()
                    .flat_map(|endpoint| endpoint.replicas.iter().cloned())
                    .collect()
            })
        });
        version
    }

    /// Deploys `detector` as endpoint `name` on **every replica** and
    /// returns the published version number (1 for a new endpoint,
    /// previous + 1 afterwards — identical on all replicas).
    ///
    /// The detector is cloned per replica through the save/load codec, so
    /// all replicas are bit-identical by the persistence guarantee. The
    /// fan-out runs under the endpoint's generation lock, so concurrent
    /// deploys/rollbacks cannot interleave their per-replica walks; scoring
    /// does not take that lock, so requests racing the fan-out finish on
    /// whichever version their replica was serving when they enqueued
    /// (replicas the walk has not reached yet still stamp the outgoing
    /// version), exactly like rows already queued in a tile.
    ///
    /// # Errors
    ///
    /// [`FleetError::Replication`] when the codec round trip that clones
    /// the detector fails — including detectors that do not implement
    /// persistence at all (use [`ShardedFleet::deploy_replicas`] for
    /// those).
    pub fn deploy(&self, name: &str, detector: Box<dyn Detector>) -> Result<u64, FleetError> {
        let detectors = self.replicate(detector)?;
        Ok(self.publish(name, detectors))
    }

    /// Like [`ShardedFleet::deploy`], but takes one **pre-built detector
    /// per replica** instead of cloning through the codec — the escape
    /// hatch for detectors that cannot (or must not) round-trip
    /// persistence, such as the fault-injection wrapper
    /// [`crate::FaultInjector`] whose schedule is deliberately
    /// non-persistable. The caller owns the guarantee that the detectors
    /// are equivalent; the fleet only guarantees they version in lock-step.
    ///
    /// # Errors
    ///
    /// [`FleetError::Replication`] when `detectors.len()` differs from the
    /// configured replica count.
    pub fn deploy_replicas(
        &self,
        name: &str,
        detectors: Vec<Box<dyn Detector>>,
    ) -> Result<u64, FleetError> {
        if detectors.len() != self.config.replicas {
            return Err(FleetError::Replication {
                message: format!(
                    "deploy_replicas needs {} detectors (one per replica), got {}",
                    self.config.replicas,
                    detectors.len()
                ),
            });
        }
        Ok(self.publish(name, detectors))
    }

    /// Rolls **every replica** of endpoint `name` back to the version
    /// retired by the latest deploy, returning the restored version number.
    /// Each replica's pending tile is flushed first; in-flight tiles finish
    /// on the version that accepted them.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::NoPreviousVersion`] when nothing was ever retired.
    pub fn rollback(&self, name: &str) -> Result<u64, FleetError> {
        self.endpoint(name)?.rollback(name)
    }

    /// The version every replica of endpoint `name` currently serves.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn active_version(&self, name: &str) -> Result<u64, FleetError> {
        Ok(*self.endpoint(name)?.generation.lock_unpoisoned())
    }

    /// The active detector's human-readable description (identical on every
    /// replica).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn detector_name(&self, name: &str) -> Result<String, FleetError> {
        Ok(self.endpoint(name)?.replicas[0].active().detector.name())
    }

    /// Names of every deployed endpoint, sorted.
    pub fn endpoints(&self) -> Vec<String> {
        let mut names: Vec<String> = self.endpoints.read_unpoisoned().keys().cloned().collect();
        names.sort();
        names
    }

    /// Replica count of endpoint `name`.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn replicas(&self, name: &str) -> Result<usize, FleetError> {
        Ok(self.endpoint(name)?.replicas.len())
    }

    /// Enqueues one signature into the tile of the replica the routing
    /// policy picks, returning a [`ShardTicket`] that remembers the choice.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::WidthMismatch`] when `features` disagrees with rows
    /// already queued in the chosen replica's tile,
    /// [`FleetError::Overloaded`] / [`FleetError::CircuitOpen`] when the
    /// chosen replica sheds.
    pub fn score(&self, name: &str, features: &[f64]) -> Result<ShardTicket, FleetError> {
        let endpoint = self.endpoint(name)?;
        let replica = endpoint.route(None);
        let ticket = endpoint.replicas[replica].enqueue(features)?;
        Ok(ShardTicket { replica, ticket })
    }

    /// Like [`ShardedFleet::score`], but pins the request to the replica
    /// derived from `key`'s hash — session stickiness: every request with
    /// the same key queues (and therefore micro-batches) on the same
    /// replica, under **any** routing policy (including while that replica's
    /// breaker sheds — a sticky session sees its replica's fallback rather
    /// than silently migrating).
    ///
    /// # Errors
    ///
    /// Same as [`ShardedFleet::score`].
    pub fn score_keyed(
        &self,
        name: &str,
        key: u64,
        features: &[f64],
    ) -> Result<ShardTicket, FleetError> {
        let endpoint = self.endpoint(name)?;
        let replica = endpoint.route(Some(key));
        let ticket = endpoint.replicas[replica].enqueue(features)?;
        Ok(ShardTicket { replica, ticket })
    }

    /// Scores a whole borrowed batch view on one routed replica, bypassing
    /// the micro-batch queue but still stamping versions, attributing the
    /// replica, and feeding that replica's statistics.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names, or the detector's
    /// error for mismatched feature counts.
    pub fn score_batch<'a>(
        &self,
        name: &str,
        batch: impl Into<RowsView<'a>>,
    ) -> Result<Vec<ShardedReport>, FleetError> {
        let endpoint = self.endpoint(name)?;
        let replica = endpoint.route(None);
        Ok(endpoint.replicas[replica]
            .score_rows(batch.into())?
            .into_iter()
            .map(|scored| ShardedReport::new(replica, scored))
            .collect())
    }

    /// Drains the pending tile of **every replica** of endpoint `name`,
    /// returning the total number of rows scored.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn flush(&self, name: &str) -> Result<usize, FleetError> {
        Ok(self
            .endpoint(name)?
            .replicas
            .iter()
            .map(|replica| replica.flush())
            .sum())
    }

    /// Endpoint-wide monitor statistics: every replica's [`MonitorStats`]
    /// merged into one view with [`MonitorStats::merge`].
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn stats(&self, name: &str) -> Result<MonitorStats, FleetError> {
        let endpoint = self.endpoint(name)?;
        let mut merged = MonitorStats::default();
        for replica in &endpoint.replicas {
            merged.merge(&replica.stats.lock_unpoisoned());
        }
        Ok(merged)
    }

    /// Per-replica monitor statistics, indexed like [`ShardedReport::replica`]
    /// — the unmerged view a dashboard uses to spot a hot or idle replica.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn replica_stats(&self, name: &str) -> Result<Vec<MonitorStats>, FleetError> {
        Ok(self
            .endpoint(name)?
            .replicas
            .iter()
            .map(|replica| *replica.stats.lock_unpoisoned())
            .collect())
    }

    /// Rows currently queued in each replica's open tile — the same racy
    /// snapshot the [`RoutePolicy::LeastLoaded`] router reads.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn pending_depths(&self, name: &str) -> Result<Vec<usize>, FleetError> {
        Ok(self
            .endpoint(name)?
            .replicas
            .iter()
            .map(|replica| replica.pending_depth())
            .collect())
    }

    /// Each replica's circuit-breaker state, indexed like
    /// [`ShardedReport::replica`].
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn breaker_states(&self, name: &str) -> Result<Vec<BreakerState>, FleetError> {
        Ok(self
            .endpoint(name)?
            .replicas
            .iter()
            .map(|replica| replica.breaker_state())
            .collect())
    }

    /// Each replica's supervision health (breaker state, admitted rows,
    /// shed/degraded/trip counters), indexed like
    /// [`ShardedReport::replica`].
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn replica_health(&self, name: &str) -> Result<Vec<HealthSnapshot>, FleetError> {
        Ok(self
            .endpoint(name)?
            .replicas
            .iter()
            .map(|replica| replica.health())
            .collect())
    }

    /// Resets every replica's monitor statistics for endpoint `name`.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn reset_stats(&self, name: &str) -> Result<(), FleetError> {
        for replica in &self.endpoint(name)?.replicas {
            *replica.stats.lock_unpoisoned() = MonitorStats::default();
        }
        Ok(())
    }

    /// Reset-on-read window over endpoint `name`'s merged statistics:
    /// every replica's window since the previous call, merged with
    /// [`MonitorStats::merge`] (window snapshots merge exactly like their
    /// source blocks). Lifetime statistics ([`ShardedFleet::stats`]) are
    /// untouched — this is the feed a drift detector polls.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn window_stats(&self, name: &str) -> Result<MonitorStats, FleetError> {
        let endpoint = self.endpoint(name)?;
        let mut merged = MonitorStats::default();
        for replica in &endpoint.replicas {
            merged.merge(&replica.window_stats());
        }
        Ok(merged)
    }

    /// Installs `detector` as endpoint `name`'s **challenger on every
    /// replica** (cloned through the persistence codec like
    /// [`ShardedFleet::deploy`]): each replica's challenger scores every
    /// batch that replica's champion serves, into its own statistics, while
    /// callers keep receiving exactly the champion's reports. Replaces any
    /// previous challenger. The fan-out runs under the endpoint's
    /// generation lock, in lock-step with deploys and promotions.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::Replication`] when the codec round trip that clones
    /// the challenger fails.
    pub fn deploy_shadow(&self, name: &str, detector: Box<dyn Detector>) -> Result<(), FleetError> {
        let endpoint = self.endpoint(name)?;
        let detectors = self.replicate(detector)?;
        endpoint.deploy_shadow(detectors);
        Ok(())
    }

    /// The challenger's merged evidence across every replica (`None` when
    /// no shadow is installed): statistics merge, row/error counters add.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn shadow_stats(&self, name: &str) -> Result<Option<ShadowSnapshot>, FleetError> {
        let endpoint = self.endpoint(name)?;
        Ok(merge_shadow_snapshots(
            endpoint
                .replicas
                .iter()
                .map(|replica| replica.shadow_snapshot()),
        ))
    }

    /// Removes endpoint `name`'s challenger from every replica without
    /// promoting it, returning the merged final evidence (`None` when no
    /// shadow was installed).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names.
    pub fn clear_shadow(&self, name: &str) -> Result<Option<ShadowSnapshot>, FleetError> {
        Ok(self.endpoint(name)?.clear_shadow())
    }

    /// Promotes endpoint `name`'s challenger to champion on **every
    /// replica** in lock-step: each replica publishes its own challenger
    /// instance as the next version (the same version number everywhere,
    /// by the shared administrative history), the outgoing champions are
    /// retired for [`ShardedFleet::rollback`], and the shadow slots empty.
    /// Returns the published version number.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownEndpoint`] for unknown names,
    /// [`FleetError::NoShadow`] when no challenger is installed.
    pub fn promote_shadow(&self, name: &str) -> Result<u64, FleetError> {
        self.endpoint(name)?.promote_shadow(name)
    }
}

/// A 1-replica [`ShardedFleet`] behaves exactly like a [`DetectorFleet`],
/// so converting a fleet's full configuration into a shard config is the
/// upgrade path.
impl From<&DetectorFleet> for ShardConfig {
    fn from(fleet: &DetectorFleet) -> ShardConfig {
        let config = fleet.config();
        ShardConfig::new(1)
            .with_flush(config.flush)
            .with_admission(config.admission)
            .with_breaker(config.breaker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_spreads_sequential_keys() {
        let n = 4u64;
        let mut hits = [0usize; 4];
        for key in 0..1000u64 {
            hits[(splitmix64(key) % n) as usize] += 1;
        }
        for (replica, &count) in hits.iter().enumerate() {
            assert!(
                count > 150,
                "replica {replica} starved: {count}/1000 sequential keys"
            );
        }
    }

    #[test]
    fn shard_config_clamps_replicas() {
        assert_eq!(ShardConfig::new(0).replicas, 1);
        let fleet = ShardedFleet::with_config(ShardConfig {
            replicas: 0,
            policy: RoutePolicy::RoundRobin,
            flush: FlushPolicy::default(),
            admission: AdmissionPolicy::default(),
            breaker: BreakerPolicy::default(),
        });
        assert_eq!(fleet.config().replicas, 1);
    }

    #[test]
    fn shard_config_carries_fleet_supervision_settings() {
        use std::time::Duration;
        let fleet = DetectorFleet::with_config(
            FleetConfig::default()
                .with_admission(AdmissionPolicy::new(42))
                .with_breaker(BreakerPolicy::new(2, Duration::from_millis(5))),
        );
        let config = ShardConfig::from(&fleet);
        assert_eq!(config.replicas, 1);
        assert_eq!(config.admission.max_pending_rows, 42);
        assert_eq!(config.breaker.failure_threshold, 2);
    }
}
