//! Fleet serving layer for the unified `Detector` API.
//!
//! [`hmd_core::detector`] gives one pipeline one polymorphic contract; this
//! crate gives *many* pipelines one deployment surface, modelled after the
//! central units of production DAQ systems: a registry that routes high-rate
//! telemetry streams to versioned processing backends without stalling
//! producers. See `ARCHITECTURE.md` at the repository root for where this
//! crate sits in the workspace's data flow.
//!
//! * [`DetectorFleet`] — a registry of named, versioned `Box<dyn Detector>`
//!   endpoints. Every endpoint owns its own
//!   [`MonitorStats`](hmd_core::detector::MonitorStats) (the per-tenant
//!   `MonitorSession` state of earlier PRs moves behind the fleet) and a
//!   micro-batching request collector.
//! * **Micro-batching**: single-row [`DetectorFleet::score`] calls enqueue
//!   into a per-endpoint tile and return an ordered [`Ticket`]. The tile
//!   drains through the detector's batch hot path (`detect_rows`, flat
//!   engine, persistent worker pool) when it reaches
//!   [`FlushPolicy::max_batch`] rows, when a waiter's
//!   [`FlushPolicy::max_wait`] deadline expires, or on an explicit
//!   [`DetectorFleet::flush`]. Because every detector scores rows
//!   independently, fleet-routed results are **bit-identical** to calling
//!   `detect_batch` directly — the seeded multi-threaded equivalence test in
//!   `tests/fleet.rs` enforces this.
//! * **Hot swap**: [`DetectorFleet::deploy`] atomically publishes a new
//!   version of an endpoint while requests already enqueued finish on the
//!   version that accepted them; [`DetectorFleet::rollback`] restores the
//!   previous version. Every result is a version-stamped
//!   [`VersionedReport`] envelope, so consumers can attribute each decision
//!   to the exact model that made it.
//! * **Sharding**: [`ShardedFleet`] replicates each endpoint across `N`
//!   shards — every replica a full endpoint with its own tile and monitor —
//!   and routes requests with a pluggable [`RoutePolicy`] (round-robin,
//!   least-loaded by open-tile depth, or key affinity for session
//!   stickiness). Replicas are bit-identical codec clones on lock-stepped
//!   versions, so sharding changes *where* a request queues, never *what*
//!   it scores; `tests/shard.rs` proves sharded scoring report-identical to
//!   the single-endpoint fleet modulo replica attribution.
//! * **Supervision**: every fleet owns one background flusher thread that
//!   fires [`FlushPolicy::max_wait`] deadlines even with no blocked waiter
//!   (spawned lazily on the first deploy, joined on drop). Every endpoint
//!   (and every shard replica) carries a bounded admission budget
//!   ([`AdmissionPolicy`] — beyond it, `score` sheds with
//!   [`FleetError::Overloaded`] instead of growing memory) and a circuit
//!   breaker ([`BreakerPolicy`] — consecutive failed drains trip it to
//!   Open, which fast-sheds with [`FleetError::CircuitOpen`] or degrades to
//!   a synthetic escalation per [`FallbackPolicy`], and half-open probes
//!   re-admit traffic). Supervision outcomes are observable per endpoint
//!   through [`HealthSnapshot`]; callers bound their own latency with
//!   [`Ticket::wait_deadline`].
//! * **Fault injection**: [`FaultInjector`] wraps any detector with a
//!   deterministic [`FaultPlan`] (fail-nth, fail-after, slow-call,
//!   width-corrupt) so chaos tests — `tests/chaos.rs` — can prove the
//!   shedding, breaker and bit-identity claims above under scheduled
//!   misbehaviour.
//! * **Process separation**: [`net`] puts a length-prefixed, versioned
//!   loopback TCP protocol (`PROTOCOL.md`) in front of a [`ShardedFleet`]:
//!   [`FleetServer`] is a bounded accept/worker loop with per-connection
//!   in-flight budgets and deadline-wired drains, [`FleetClient`] a small
//!   blocking client with deterministic retry/backoff/jitter and
//!   idempotent-only retry. The same [`FaultPlan`] vocabulary extends to
//!   transport faults (dropped connection, slow reader, truncated frame,
//!   garbage frame) so `tests/net_chaos.rs` proves recovery and
//!   bit-identity across the process boundary.
//!
//! # Example
//!
//! ```
//! use hmd_core::detector::{DetectorBackend, DetectorConfig};
//! use hmd_data::{Dataset, Label, Matrix};
//! use hmd_serve::{DetectorFleet, ShardedFleet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let x = Matrix::from_rows(&[
//!     vec![0.1, 0.2], vec![0.2, 0.1], vec![0.9, 0.8], vec![0.8, 0.9],
//! ])?;
//! let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
//! let train = Dataset::new(x, y)?;
//! let detector = DetectorConfig::trusted(DetectorBackend::decision_tree())
//!     .with_num_estimators(9)
//!     .fit(&train, 3)?;
//!
//! let fleet = DetectorFleet::new();
//! let version = fleet.deploy("dvfs-hmd", detector);
//! assert_eq!(version, 1);
//!
//! // Single-row requests micro-batch behind the endpoint.
//! let ticket = fleet.score("dvfs-hmd", &[0.15, 0.15])?;
//! fleet.flush("dvfs-hmd")?;
//! let scored = ticket.wait()?;
//! assert_eq!(scored.version, 1);
//! assert_eq!(fleet.stats("dvfs-hmd")?.windows, 1);
//!
//! // Scale out: the same model replicated across two shards.
//! let sharded = ShardedFleet::new(2);
//! let detector = DetectorConfig::trusted(DetectorBackend::decision_tree())
//!     .with_num_estimators(9)
//!     .fit(&train, 3)?;
//! sharded.deploy("dvfs-hmd", detector)?;
//! let ticket = sharded.score("dvfs-hmd", &[0.15, 0.15])?;
//! sharded.flush("dvfs-hmd")?;
//! assert!(ticket.wait()?.replica < 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod admission;
mod breaker;
mod faults;
mod fleet;
pub mod net;
mod shard;
mod supervisor;
mod sync;

pub use admission::AdmissionPolicy;
pub use breaker::{degraded_escalation, BreakerPolicy, BreakerState, FallbackPolicy};
pub use faults::{FaultCounters, FaultInjector, FaultPlan};
pub use fleet::{
    DetectorFleet, FleetConfig, FleetError, FlushPolicy, HealthSnapshot, ShadowSnapshot, Ticket,
    VersionedReport,
};
pub use net::{
    ClientConfig, ClientStats, FleetClient, FleetServer, NetError, RetryPolicy, ServerConfig,
    ServerStats,
};
pub use shard::{RoutePolicy, ShardConfig, ShardTicket, ShardedFleet, ShardedReport};
