//! Poison-recovering lock helpers for the serving crate.
//!
//! `std`'s mutexes poison when a holder panics, and every subsequent
//! `.lock().expect(...)` then panics too — one crashed request thread
//! cascades into a fleet-wide outage. That is the wrong failure mode for a
//! serving layer: the state each lock protects (monitor counters, the
//! version stack, an open request tile) is updated in small straight-line
//! critical sections that are either complete or untouched when a panic
//! unwinds through them, so the data behind a poisoned lock is still
//! coherent and strictly more useful served than burned.
//!
//! Every lock acquisition in this crate therefore goes through these
//! helpers, which recover the guard from a poisoned lock instead of
//! panicking. This is also what keeps the crate clean under the
//! `no-panic-in-lib` lint rule — the helpers contain no `unwrap`/`expect`.
//!
//! The background flusher ([`crate::supervisor`]) depends on this recovery
//! for liveness: a scorer thread that panics while holding an endpoint
//! lock must not take the supervisor down with it, or every subsequent
//! `max_wait` deadline would silently stop firing. The end-to-end version
//! of that claim (poison every endpoint lock, then score/flush/stats
//! anyway) is tested in `fleet.rs`.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Unwraps any poisonable lock result (including `Condvar::wait` /
/// `wait_timeout` results), recovering the guard on poison.
pub(crate) fn unpoison<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// [`Mutex`] acquisition that recovers from poisoning.
pub(crate) trait LockExt<T> {
    /// Like [`Mutex::lock`], but recovers the guard when a previous holder
    /// panicked instead of propagating the poison as a second panic.
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T> {
        unpoison(self.lock())
    }
}

/// [`RwLock`] acquisition that recovers from poisoning.
pub(crate) trait RwLockExt<T> {
    /// Like [`RwLock::read`], recovering from poison.
    fn read_unpoisoned(&self) -> RwLockReadGuard<'_, T>;
    /// Like [`RwLock::write`], recovering from poison.
    fn write_unpoisoned(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    fn read_unpoisoned(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.read())
    }

    fn write_unpoisoned(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_locks_are_recovered_not_propagated() {
        let shared = Arc::new(Mutex::new(7u32));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(shared.lock().is_err(), "the lock must actually be poisoned");
        assert_eq!(*shared.lock_unpoisoned(), 7);
    }

    #[test]
    fn condvar_wait_results_unpoison_too() {
        use std::sync::Condvar;
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let poisoner = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.0.lock().unwrap();
            panic!("poison the condvar's mutex");
        })
        .join();
        // Both the lock and the timed wait go through `unpoison`: the
        // supervisor's wait loop survives a poisoned state mutex.
        let guard = pair.0.lock_unpoisoned();
        let (guard, timeout) = unpoison(pair.1.wait_timeout(guard, Duration::from_millis(1)));
        assert!(timeout.timed_out());
        assert!(!*guard);
    }

    #[test]
    fn rwlock_recovery_covers_both_sides() {
        let shared = Arc::new(RwLock::new(vec![1, 2]));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(shared.read_unpoisoned().len(), 2);
        shared.write_unpoisoned().push(3);
        assert_eq!(shared.read_unpoisoned().len(), 3);
    }
}
