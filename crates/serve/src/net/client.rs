//! The blocking [`FleetClient`]: one connection, one in-flight request,
//! deterministic retry with exponential backoff and jitter.
//!
//! Retry semantics (normative in `PROTOCOL.md`):
//!
//! * **Connection faults** (connect refused, write failure, EOF or
//!   garbage mid-response, response timeout) drop the connection. If the
//!   request is **idempotent** — scoring, flush, health — the client
//!   backs off and retries up to [`RetryPolicy::with_max_attempts`];
//!   reconnection is part of the retry.
//! * **Non-idempotent requests** (`deploy`, `rollback`) are retried only
//!   while the client can prove the request never reached the wire (the
//!   connect itself failed). Once any request byte may have been sent, a
//!   fault surfaces as [`NetError::InFlight`] and the caller decides.
//! * **`Overloaded` error frames** are the server's backpressure signal:
//!   for idempotent requests the client treats them like a connection
//!   fault for retry purposes (backoff, then resend) — the connection
//!   itself stays usable.
//!
//! Backoff is `base × 2^(attempt-1)` capped at the configured maximum,
//! plus a deterministic jitter of up to 25 % derived from a seeded
//! splitmix64 stream — chaos tests replay identical schedules, while
//! concurrent clients with different seeds still decorrelate.

use crate::fleet::{FleetError, HealthSnapshot};
use crate::net::wire::{
    frame_bytes, parse_payload, FrameKind, FrameReader, ReadStep, Request, Response,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::net::NetError;
use crate::shard::{splitmix64, ShardedReport};
use hmd_core::detector::Detector;
use hmd_data::RowsView;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Retry/backoff schedule for [`FleetClient`]; deterministic given its
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    jitter_seed: u64,
}

impl RetryPolicy {
    /// Defaults: 4 attempts, 5 ms base backoff doubling to a 200 ms cap,
    /// jitter seed 0.
    pub fn new() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            jitter_seed: 0,
        }
    }

    /// No retries: every fault surfaces on the first attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy::new().with_max_attempts(1)
    }

    /// Total attempts per request (clamped to at least 1).
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u32) -> RetryPolicy {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Backoff bounds: the first retry waits `base` (± jitter), each
    /// further retry doubles it, capped at `max`.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> RetryPolicy {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// Seeds the deterministic jitter stream (decorrelate concurrent
    /// clients by giving each a different seed).
    #[must_use]
    pub fn with_jitter_seed(mut self, jitter_seed: u64) -> RetryPolicy {
        self.jitter_seed = jitter_seed;
        self
    }

    /// The wait before retry number `attempt` (1-based), with the jitter
    /// drawn from draw number `draw` of the seeded stream. Exposed for
    /// tests; [`FleetClient`] advances `draw` once per backoff.
    pub fn delay(&self, attempt: u32, draw: u64) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let scaled = self
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff);
        // 53 uniform bits → [0, 1): the jitter fraction.
        let unit =
            (splitmix64(self.jitter_seed.wrapping_add(draw)) >> 11) as f64 / (1u64 << 53) as f64;
        scaled + scaled.mul_f64(unit * 0.25)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::new()
    }
}

/// Configuration of a [`FleetClient`]; start from [`ClientConfig::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    retry: RetryPolicy,
    connect_timeout: Duration,
    response_timeout: Duration,
    max_frame_bytes: usize,
}

impl ClientConfig {
    /// Defaults: [`RetryPolicy::new`], 1 s connect timeout, 5 s response
    /// timeout, 4 MiB frames.
    pub fn new() -> ClientConfig {
        ClientConfig {
            retry: RetryPolicy::new(),
            connect_timeout: Duration::from_secs(1),
            response_timeout: Duration::from_secs(5),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }

    /// Installs a retry/backoff schedule.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> ClientConfig {
        self.retry = retry;
        self
    }

    /// Bounds each TCP connect attempt.
    #[must_use]
    pub fn with_connect_timeout(mut self, connect_timeout: Duration) -> ClientConfig {
        self.connect_timeout = connect_timeout;
        self
    }

    /// Bounds the wait for each response frame; a server that exceeds it
    /// is treated as a connection fault (and the request retried if
    /// idempotent).
    #[must_use]
    pub fn with_response_timeout(mut self, response_timeout: Duration) -> ClientConfig {
        self.response_timeout = response_timeout;
        self
    }

    /// Caps response frames this client will buffer.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> ClientConfig {
        self.max_frame_bytes = max_frame_bytes.max(hmd_codec::frame::HEADER_LEN);
        self
    }
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig::new()
    }
}

/// Observable counters of a [`FleetClient`] — what recovery tests assert
/// against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ClientStats {
    /// Successful TCP connects (the first plus every reconnection).
    pub connects: u64,
    /// Requests re-sent after a backoff (connection faults and
    /// `Overloaded` frames alike).
    pub retries: u64,
}

/// What one exchange attempt knows about a failure: the error, and
/// whether any request bytes may have reached the server (which gates
/// non-idempotent retry).
struct Fault {
    error: NetError,
    sent: bool,
}

/// A small blocking client for a [`FleetServer`](crate::net::FleetServer):
/// one connection, one in-flight request, automatic reconnect-and-retry
/// per [`RetryPolicy`].
pub struct FleetClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    stats: ClientStats,
    /// Jitter draw counter; one draw per backoff keeps the schedule
    /// deterministic across the client's lifetime.
    draws: u64,
}

impl std::fmt::Debug for FleetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetClient")
            .field("addr", &self.addr)
            .field("connected", &self.stream.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FleetClient {
    /// Connects to a server (eagerly — a refused connect surfaces here,
    /// after the retry schedule is exhausted).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if every connect attempt fails.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<FleetClient, NetError> {
        let mut client = FleetClient {
            addr,
            config,
            stream: None,
            stats: ClientStats::default(),
            draws: 0,
        };
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match client.ensure_connected() {
                Ok(()) => return Ok(client),
                Err(fault) => {
                    if attempt >= client.config.retry.max_attempts {
                        return Err(fault.error);
                    }
                    client.backoff(attempt);
                }
            }
        }
    }

    /// The server address this client talks to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the client's counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Scores one row. Idempotent: retried across connection faults.
    ///
    /// # Errors
    ///
    /// The remote fleet outcome as [`NetError::Fleet`], or the transport
    /// fault that exhausted the retry schedule.
    pub fn score(&mut self, endpoint: &str, row: &[f64]) -> Result<ShardedReport, NetError> {
        let request = Request::ScoreRow {
            endpoint: endpoint.to_string(),
            key: None,
            row: row.to_vec(),
        };
        match self.request(&request, true)? {
            Response::ScoreRow(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Scores one row with a routing key (session affinity). Idempotent.
    ///
    /// # Errors
    ///
    /// As [`FleetClient::score`].
    pub fn score_keyed(
        &mut self,
        endpoint: &str,
        key: u64,
        row: &[f64],
    ) -> Result<ShardedReport, NetError> {
        let request = Request::ScoreRow {
            endpoint: endpoint.to_string(),
            key: Some(key),
            row: row.to_vec(),
        };
        match self.request(&request, true)? {
            Response::ScoreRow(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Scores a batch in one frame; reports come back in row order.
    /// Idempotent.
    ///
    /// # Errors
    ///
    /// As [`FleetClient::score`].
    pub fn score_batch<'a>(
        &mut self,
        endpoint: &str,
        batch: impl Into<RowsView<'a>>,
    ) -> Result<Vec<ShardedReport>, NetError> {
        let view = batch.into();
        let rows = (0..view.rows()).map(|r| view.row(r).to_vec()).collect();
        let request = Request::ScoreBatch {
            endpoint: endpoint.to_string(),
            rows,
        };
        match self.request(&request, true)? {
            Response::ScoreBatch(reports) => Ok(reports),
            other => Err(unexpected(&other)),
        }
    }

    /// Drains the endpoint's pending tiles; returns rows drained.
    /// Idempotent.
    ///
    /// # Errors
    ///
    /// As [`FleetClient::score`].
    pub fn flush(&mut self, endpoint: &str) -> Result<usize, NetError> {
        let request = Request::Flush {
            endpoint: endpoint.to_string(),
        };
        match self.request(&request, true)? {
            Response::Flush { rows } => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }

    /// Publishes a new version of `endpoint` from a detector, carried as
    /// its saved document. **Not idempotent** — see [`NetError::InFlight`].
    ///
    /// # Errors
    ///
    /// [`NetError::Fleet`] with [`FleetError::Detector`] if the detector
    /// does not persist, the remote outcome otherwise.
    pub fn deploy(&mut self, endpoint: &str, detector: &dyn Detector) -> Result<u64, NetError> {
        let document =
            hmd_core::detector::save(detector).map_err(|error| FleetError::Detector {
                message: error.to_string(),
            })?;
        self.deploy_document(endpoint, &document)
    }

    /// Publishes a new version from an already-saved detector document.
    /// **Not idempotent.**
    ///
    /// # Errors
    ///
    /// As [`FleetClient::deploy`].
    pub fn deploy_document(&mut self, endpoint: &str, document: &str) -> Result<u64, NetError> {
        let request = Request::Deploy {
            endpoint: endpoint.to_string(),
            document: document.to_string(),
        };
        match self.request(&request, false)? {
            Response::Deploy { version } => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    /// Restores the endpoint's previous version. **Not idempotent.**
    ///
    /// # Errors
    ///
    /// As [`FleetClient::deploy`].
    pub fn rollback(&mut self, endpoint: &str) -> Result<u64, NetError> {
        let request = Request::Rollback {
            endpoint: endpoint.to_string(),
        };
        match self.request(&request, false)? {
            Response::Rollback { version } => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    /// Queries per-replica supervision health. Idempotent.
    ///
    /// # Errors
    ///
    /// As [`FleetClient::score`].
    pub fn health(&mut self, endpoint: &str) -> Result<Vec<HealthSnapshot>, NetError> {
        let request = Request::Health {
            endpoint: endpoint.to_string(),
        };
        match self.request(&request, true)? {
            Response::Health(snapshots) => Ok(snapshots),
            other => Err(unexpected(&other)),
        }
    }

    /// The retry loop around one request.
    fn request(&mut self, request: &Request, idempotent: bool) -> Result<Response, NetError> {
        let max_attempts = self.config.retry.max_attempts;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.exchange(request) {
                Ok(Response::Error(error)) => {
                    let overloaded =
                        matches!(error, NetError::Fleet(FleetError::Overloaded { .. }));
                    if overloaded && idempotent && attempt < max_attempts {
                        self.backoff(attempt);
                        continue;
                    }
                    return Err(error);
                }
                Ok(response) => return Ok(response),
                Err(fault) => {
                    // The connection can no longer be trusted.
                    self.stream = None;
                    if fault.sent && !idempotent {
                        return Err(NetError::InFlight {
                            message: fault.error.to_string(),
                        });
                    }
                    if attempt >= max_attempts {
                        return Err(fault.error);
                    }
                    self.backoff(attempt);
                }
            }
        }
    }

    fn backoff(&mut self, attempt: u32) {
        self.stats.retries += 1;
        let delay = self.config.retry.delay(attempt, self.draws);
        self.draws += 1;
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    fn ensure_connected(&mut self) -> Result<(), Fault> {
        if self.stream.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).map_err(
            |error| Fault {
                error: NetError::Io {
                    context: "connect",
                    message: error.to_string(),
                },
                sent: false,
            },
        )?;
        let _ = stream.set_nodelay(true);
        self.stats.connects += 1;
        self.stream = Some(stream);
        Ok(())
    }

    /// One attempt: connect if needed, write the request frame, read one
    /// response frame.
    fn exchange(&mut self, request: &Request) -> Result<Response, Fault> {
        self.ensure_connected()?;
        let bytes = frame_bytes(request.kind(), &request.to_json())
            .map_err(|error| Fault { error, sent: false })?;
        let Some(stream) = self.stream.as_mut() else {
            return Err(Fault {
                error: NetError::Io {
                    context: "connect",
                    message: "connection unavailable".to_string(),
                },
                sent: false,
            });
        };
        stream.write_all(&bytes).map_err(|error| Fault {
            error: NetError::Io {
                context: "write",
                message: error.to_string(),
            },
            sent: true,
        })?;
        let sent = |error: NetError| Fault { error, sent: true };
        let deadline = Instant::now() + self.config.response_timeout;
        let mut reader = FrameReader::new(self.config.max_frame_bytes);
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(sent(NetError::Io {
                    context: "read",
                    message: format!("no response within {:?}", self.config.response_timeout),
                }));
            }
            let _ = stream.set_read_timeout(Some(remaining));
            match reader.poll(stream) {
                Ok(ReadStep::Pending) => {}
                Ok(ReadStep::Eof) => {
                    return Err(sent(NetError::Io {
                        context: "read",
                        message: "server closed the connection".to_string(),
                    }))
                }
                Ok(ReadStep::Frame(header, payload)) => {
                    if header.version != PROTOCOL_VERSION {
                        return Err(sent(NetError::VersionMismatch {
                            ours: PROTOCOL_VERSION,
                            theirs: header.version,
                        }));
                    }
                    let Some(kind) = FrameKind::from_u8(header.kind) else {
                        return Err(sent(NetError::Protocol {
                            message: format!("unknown response kind {:#04x}", header.kind),
                        }));
                    };
                    let json = parse_payload(&payload).map_err(&sent)?;
                    return Response::from_wire(kind, &json).map_err(&sent);
                }
                Err(error) => return Err(sent(error)),
            }
        }
    }
}

fn unexpected(response: &Response) -> NetError {
    NetError::Protocol {
        message: format!(
            "response kind {:#04x} does not answer the request",
            response.kind().as_u8()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let policy = RetryPolicy::new()
            .with_backoff(Duration::from_millis(10), Duration::from_millis(40))
            .with_jitter_seed(7);
        let first = policy.delay(1, 0);
        let second = policy.delay(2, 1);
        let deep = policy.delay(10, 2);
        // Exponential growth with a cap...
        assert!(first >= Duration::from_millis(10) && first < Duration::from_micros(12_500));
        assert!(second >= Duration::from_millis(20) && second < Duration::from_micros(25_000));
        assert!(deep >= Duration::from_millis(40) && deep <= Duration::from_millis(50));
        // ...and the same (attempt, draw) pair always waits the same time.
        assert_eq!(policy.delay(3, 9), policy.delay(3, 9));
        assert_ne!(
            policy.delay(3, 9),
            policy.delay(3, 10),
            "jitter draws differ"
        );
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow_the_doubling() {
        let policy =
            RetryPolicy::new().with_backoff(Duration::from_secs(1), Duration::from_secs(2));
        assert!(policy.delay(u32::MAX, 0) <= Duration::from_millis(2500));
    }

    #[test]
    fn retry_policy_clamps_to_one_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::new().with_max_attempts(0).max_attempts, 1);
    }
}
