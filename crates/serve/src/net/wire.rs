//! Frame kinds, payload schemas and stable error codes of the loopback
//! protocol — the typed layer over [`hmd_codec::frame`]'s raw framing.
//!
//! `PROTOCOL.md` at the repository root is the normative spec; this module
//! is its implementation. Every message is one frame: the 8-byte header
//! (magic, version, kind, payload length) followed by a UTF-8
//! [`Json`] document. Request payloads decode into [`Request`], response
//! payloads into [`Response`]; error frames carry a stable numeric code
//! (fleet codes below 100 via [`FleetError::code`], transport codes at
//! [`CODE_FRAME_TOO_LARGE`]+) and enough structured detail to reconstruct
//! the original [`FleetError`] on the client.
//!
//! Exactness note: report floats (vote fraction, entropy) are encoded with
//! the codec's shortest-round-trip `f64` writer, so a report read off the
//! wire is **bit-identical** to the report the replica produced — the
//! chaos suite (`tests/net_chaos.rs`) asserts this against direct
//! `detect_batch` output.

use crate::breaker::BreakerState;
use crate::fleet::{FleetError, HealthSnapshot};
use crate::net::NetError;
use crate::shard::ShardedReport;
use hmd_codec::frame::{FrameHeader, HEADER_LEN};
use hmd_codec::{CodecError, Json};
use hmd_core::estimator::UncertainPrediction;
use hmd_core::trusted::{Decision, DetectionReport};
use hmd_data::Label;
use std::io::{ErrorKind, Read};
use std::time::Duration;

/// The protocol version this build speaks, carried in every frame header.
/// Peers on a different version answer with a [`CODE_VERSION_MISMATCH`]
/// error frame and close — there is no cross-version negotiation on a
/// loopback link where both ends ship from one workspace.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on a single frame's payload (4 MiB): large enough for a
/// saved detector document or a multi-thousand-row batch, small enough
/// that a corrupt or hostile length field cannot balloon memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 << 20;

/// Stable code of [`NetError::FrameTooLarge`] error frames. The transport
/// range starts at 100; fleet-semantic codes ([`FleetError::code`]) stay
/// below it.
pub const CODE_FRAME_TOO_LARGE: u16 = 100;

/// Stable code of [`NetError::VersionMismatch`] error frames.
pub const CODE_VERSION_MISMATCH: u16 = 101;

/// Stable code of [`NetError::Protocol`] error frames (bad magic,
/// malformed payload, unknown frame kind).
pub const CODE_PROTOCOL: u16 = 102;

/// Message discriminator carried in the frame header's `kind` byte.
/// Requests occupy `0x01..=0x06`; each response kind is its request's
/// kind with the high bit set; `0xFF` is the error frame any request can
/// be answered with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Score one row (pipelined; counts against the in-flight budget).
    ScoreRow = 0x01,
    /// Score a whole batch synchronously.
    ScoreBatch = 0x02,
    /// Drain the endpoint's pending tiles.
    Flush = 0x03,
    /// Publish a new detector version from a saved document.
    Deploy = 0x04,
    /// Restore the endpoint's previous version.
    Rollback = 0x05,
    /// Query per-replica supervision health.
    Health = 0x06,
    /// Response to [`FrameKind::ScoreRow`].
    ScoreRowReply = 0x81,
    /// Response to [`FrameKind::ScoreBatch`].
    ScoreBatchReply = 0x82,
    /// Response to [`FrameKind::Flush`].
    FlushReply = 0x83,
    /// Response to [`FrameKind::Deploy`].
    DeployReply = 0x84,
    /// Response to [`FrameKind::Rollback`].
    RollbackReply = 0x85,
    /// Response to [`FrameKind::Health`].
    HealthReply = 0x86,
    /// Error response to any request.
    Error = 0xFF,
}

impl FrameKind {
    /// The header byte for this kind.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a header byte; `None` for kinds this version does not know.
    pub fn from_u8(byte: u8) -> Option<FrameKind> {
        match byte {
            0x01 => Some(FrameKind::ScoreRow),
            0x02 => Some(FrameKind::ScoreBatch),
            0x03 => Some(FrameKind::Flush),
            0x04 => Some(FrameKind::Deploy),
            0x05 => Some(FrameKind::Rollback),
            0x06 => Some(FrameKind::Health),
            0x81 => Some(FrameKind::ScoreRowReply),
            0x82 => Some(FrameKind::ScoreBatchReply),
            0x83 => Some(FrameKind::FlushReply),
            0x84 => Some(FrameKind::DeployReply),
            0x85 => Some(FrameKind::RollbackReply),
            0x86 => Some(FrameKind::HealthReply),
            0xFF => Some(FrameKind::Error),
            _ => None,
        }
    }

    /// True for the request half of the vocabulary.
    pub fn is_request(self) -> bool {
        (self.as_u8() & 0x80) == 0
    }
}

/// One decoded request payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score one row against `endpoint`, optionally with a routing key for
    /// session affinity (mirrors `ShardedFleet::score_keyed`).
    ScoreRow {
        /// Target endpoint name.
        endpoint: String,
        /// Routing key for key-affinity policies; `None` routes by the
        /// endpoint's default policy.
        key: Option<u64>,
        /// The feature row.
        row: Vec<f64>,
    },
    /// Score a batch of rows synchronously (one reply carrying every
    /// report, in row order).
    ScoreBatch {
        /// Target endpoint name.
        endpoint: String,
        /// The feature rows; all must share one width.
        rows: Vec<Vec<f64>>,
    },
    /// Drain `endpoint`'s pending tiles on every replica.
    Flush {
        /// Target endpoint name.
        endpoint: String,
    },
    /// Publish a new version of `endpoint` from a saved detector document
    /// (the `hmd_core::detector::save` format). **Not idempotent**: each
    /// application bumps the version.
    Deploy {
        /// Target endpoint name.
        endpoint: String,
        /// The saved detector document.
        document: String,
    },
    /// Restore `endpoint`'s previous version. **Not idempotent.**
    Rollback {
        /// Target endpoint name.
        endpoint: String,
    },
    /// Query `endpoint`'s per-replica supervision health.
    Health {
        /// Target endpoint name.
        endpoint: String,
    },
}

impl Request {
    /// The frame kind this request travels under.
    pub fn kind(&self) -> FrameKind {
        match self {
            Request::ScoreRow { .. } => FrameKind::ScoreRow,
            Request::ScoreBatch { .. } => FrameKind::ScoreBatch,
            Request::Flush { .. } => FrameKind::Flush,
            Request::Deploy { .. } => FrameKind::Deploy,
            Request::Rollback { .. } => FrameKind::Rollback,
            Request::Health { .. } => FrameKind::Health,
        }
    }

    /// Encodes the request's payload document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::ScoreRow { endpoint, key, row } => Json::object(vec![
                ("endpoint", Json::Str(endpoint.clone())),
                (
                    "key",
                    match key {
                        Some(k) => u64_json(*k),
                        None => Json::Null,
                    },
                ),
                ("row", floats_json(row)),
            ]),
            Request::ScoreBatch { endpoint, rows } => Json::object(vec![
                ("endpoint", Json::Str(endpoint.clone())),
                (
                    "rows",
                    Json::Array(rows.iter().map(|row| floats_json(row)).collect()),
                ),
            ]),
            Request::Flush { endpoint } => {
                Json::object(vec![("endpoint", Json::Str(endpoint.clone()))])
            }
            Request::Deploy { endpoint, document } => Json::object(vec![
                ("endpoint", Json::Str(endpoint.clone())),
                ("document", Json::Str(document.clone())),
            ]),
            Request::Rollback { endpoint } => {
                Json::object(vec![("endpoint", Json::Str(endpoint.clone()))])
            }
            Request::Health { endpoint } => {
                Json::object(vec![("endpoint", Json::Str(endpoint.clone()))])
            }
        }
    }

    /// Decodes a request payload arriving under `kind`.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] if `kind` is not a request kind or the
    /// payload does not match its schema.
    pub fn from_wire(kind: FrameKind, payload: &Json) -> Result<Request, NetError> {
        let endpoint = payload
            .get("endpoint")
            .and_then(Json::as_str)
            .map(str::to_string)
            .map_err(protocol)?;
        match kind {
            FrameKind::ScoreRow => {
                let key = match payload.get("key").map_err(protocol)? {
                    Json::Null => None,
                    value => Some(json_u64(value).map_err(protocol)?),
                };
                let row = json_floats(payload.get("row").map_err(protocol)?).map_err(protocol)?;
                Ok(Request::ScoreRow { endpoint, key, row })
            }
            FrameKind::ScoreBatch => {
                let rows = payload
                    .get("rows")
                    .and_then(Json::as_array)
                    .map_err(protocol)?
                    .iter()
                    .map(json_floats)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(protocol)?;
                Ok(Request::ScoreBatch { endpoint, rows })
            }
            FrameKind::Flush => Ok(Request::Flush { endpoint }),
            FrameKind::Deploy => Ok(Request::Deploy {
                endpoint,
                document: payload
                    .get("document")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .map_err(protocol)?,
            }),
            FrameKind::Rollback => Ok(Request::Rollback { endpoint }),
            FrameKind::Health => Ok(Request::Health { endpoint }),
            other => Err(NetError::Protocol {
                message: format!("frame kind {:#04x} is not a request", other.as_u8()),
            }),
        }
    }
}

/// One decoded response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::ScoreRow`].
    ScoreRow(ShardedReport),
    /// Reply to [`Request::ScoreBatch`], reports in row order.
    ScoreBatch(Vec<ShardedReport>),
    /// Reply to [`Request::Flush`]: rows drained across replicas.
    Flush {
        /// Rows the flush drained.
        rows: usize,
    },
    /// Reply to [`Request::Deploy`]: the published version.
    Deploy {
        /// The new endpoint version.
        version: u64,
    },
    /// Reply to [`Request::Rollback`]: the restored version.
    Rollback {
        /// The version now serving.
        version: u64,
    },
    /// Reply to [`Request::Health`]: one snapshot per replica.
    Health(Vec<HealthSnapshot>),
    /// An error frame, reconstructed into the richest [`NetError`] the
    /// code allows.
    Error(NetError),
}

impl Response {
    /// The frame kind this response travels under.
    pub fn kind(&self) -> FrameKind {
        match self {
            Response::ScoreRow(_) => FrameKind::ScoreRowReply,
            Response::ScoreBatch(_) => FrameKind::ScoreBatchReply,
            Response::Flush { .. } => FrameKind::FlushReply,
            Response::Deploy { .. } => FrameKind::DeployReply,
            Response::Rollback { .. } => FrameKind::RollbackReply,
            Response::Health(_) => FrameKind::HealthReply,
            Response::Error(_) => FrameKind::Error,
        }
    }

    /// Encodes the response's payload document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::ScoreRow(report) => report_json(report),
            Response::ScoreBatch(reports) => Json::object(vec![(
                "reports",
                Json::Array(reports.iter().map(report_json).collect()),
            )]),
            Response::Flush { rows } => Json::object(vec![("rows", usize_json(*rows))]),
            Response::Deploy { version } => Json::object(vec![("version", u64_json(*version))]),
            Response::Rollback { version } => Json::object(vec![("version", u64_json(*version))]),
            Response::Health(snapshots) => Json::object(vec![(
                "replicas",
                Json::Array(snapshots.iter().map(health_json).collect()),
            )]),
            Response::Error(error) => error_json(error),
        }
    }

    /// Decodes a response payload arriving under `kind`.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] if `kind` is a request kind or the payload
    /// does not match its schema.
    pub fn from_wire(kind: FrameKind, payload: &Json) -> Result<Response, NetError> {
        match kind {
            FrameKind::ScoreRowReply => {
                Ok(Response::ScoreRow(json_report(payload).map_err(protocol)?))
            }
            FrameKind::ScoreBatchReply => {
                let reports = payload
                    .get("reports")
                    .and_then(Json::as_array)
                    .map_err(protocol)?
                    .iter()
                    .map(json_report)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(protocol)?;
                Ok(Response::ScoreBatch(reports))
            }
            FrameKind::FlushReply => Ok(Response::Flush {
                rows: payload
                    .get("rows")
                    .and_then(Json::as_usize)
                    .map_err(protocol)?,
            }),
            FrameKind::DeployReply => Ok(Response::Deploy {
                version: payload
                    .get("version")
                    .and_then(json_u64)
                    .map_err(protocol)?,
            }),
            FrameKind::RollbackReply => Ok(Response::Rollback {
                version: payload
                    .get("version")
                    .and_then(json_u64)
                    .map_err(protocol)?,
            }),
            FrameKind::HealthReply => {
                let snapshots = payload
                    .get("replicas")
                    .and_then(Json::as_array)
                    .map_err(protocol)?
                    .iter()
                    .map(json_health)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(protocol)?;
                Ok(Response::Health(snapshots))
            }
            FrameKind::Error => Ok(Response::Error(json_error(payload))),
            other => Err(NetError::Protocol {
                message: format!("frame kind {:#04x} is not a response", other.as_u8()),
            }),
        }
    }
}

fn protocol(error: CodecError) -> NetError {
    NetError::Protocol {
        message: error.to_string(),
    }
}

fn u64_json(value: u64) -> Json {
    // Wire integers are i64; u64 values beyond that range do not occur
    // (versions and keys are small), but encode saturating rather than
    // wrapping so a pathological value stays obviously pathological.
    Json::Int(i64::try_from(value).unwrap_or(i64::MAX))
}

fn json_u64(value: &Json) -> Result<u64, CodecError> {
    let raw = value.as_i64()?;
    u64::try_from(raw)
        .map_err(|_| CodecError::new(format!("expected unsigned integer, found {raw}")))
}

fn usize_json(value: usize) -> Json {
    Json::Int(i64::try_from(value).unwrap_or(i64::MAX))
}

fn floats_json(row: &[f64]) -> Json {
    Json::Array(row.iter().map(|&v| Json::Float(v)).collect())
}

fn json_floats(value: &Json) -> Result<Vec<f64>, CodecError> {
    value.as_array()?.iter().map(Json::as_f64).collect()
}

fn label_str(label: Label) -> &'static str {
    match label {
        Label::Benign => "benign",
        Label::Malware => "malware",
    }
}

fn str_label(text: &str) -> Result<Label, CodecError> {
    match text {
        "benign" => Ok(Label::Benign),
        "malware" => Ok(Label::Malware),
        other => Err(CodecError::new(format!("unknown label {other:?}"))),
    }
}

/// Encodes one [`ShardedReport`] — floats with the codec's bit-exact
/// round-trip formatting.
fn report_json(report: &ShardedReport) -> Json {
    let prediction = &report.report.prediction;
    Json::object(vec![
        ("replica", usize_json(report.replica)),
        ("version", u64_json(report.version)),
        ("label", Json::Str(label_str(prediction.label).to_string())),
        (
            "vote_fraction",
            Json::Float(prediction.malware_vote_fraction),
        ),
        ("entropy", Json::Float(prediction.entropy)),
        ("estimators", usize_json(prediction.num_estimators)),
        (
            "decision",
            Json::Str(match report.report.decision {
                Decision::Accept(label) => format!("accept_{}", label_str(label)),
                Decision::Escalate => "escalate".to_string(),
            }),
        ),
    ])
}

fn json_report(payload: &Json) -> Result<ShardedReport, CodecError> {
    let label = str_label(payload.get("label").and_then(Json::as_str)?)?;
    let decision = match payload.get("decision").and_then(Json::as_str)? {
        "accept_benign" => Decision::Accept(Label::Benign),
        "accept_malware" => Decision::Accept(Label::Malware),
        "escalate" => Decision::Escalate,
        other => return Err(CodecError::new(format!("unknown decision {other:?}"))),
    };
    Ok(ShardedReport {
        replica: payload.get("replica").and_then(Json::as_usize)?,
        version: payload.get("version").and_then(json_u64)?,
        report: DetectionReport {
            prediction: UncertainPrediction {
                label,
                malware_vote_fraction: payload.get("vote_fraction").and_then(Json::as_f64)?,
                entropy: payload.get("entropy").and_then(Json::as_f64)?,
                num_estimators: payload.get("estimators").and_then(Json::as_usize)?,
            },
            decision,
        },
    })
}

fn breaker_str(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half_open",
    }
}

fn health_json(snapshot: &HealthSnapshot) -> Json {
    Json::object(vec![
        (
            "breaker",
            Json::Str(breaker_str(snapshot.breaker).to_string()),
        ),
        ("pending_rows", usize_json(snapshot.pending_rows)),
        ("shed_overload", u64_json(snapshot.shed_overload)),
        ("shed_circuit", u64_json(snapshot.shed_circuit)),
        ("degraded_rows", u64_json(snapshot.degraded_rows)),
        ("breaker_trips", u64_json(snapshot.breaker_trips)),
        ("expired_flushes", u64_json(snapshot.expired_flushes)),
    ])
}

fn json_health(payload: &Json) -> Result<HealthSnapshot, CodecError> {
    let breaker = match payload.get("breaker").and_then(Json::as_str)? {
        "closed" => BreakerState::Closed,
        "open" => BreakerState::Open,
        "half_open" => BreakerState::HalfOpen,
        other => return Err(CodecError::new(format!("unknown breaker state {other:?}"))),
    };
    Ok(HealthSnapshot {
        breaker,
        pending_rows: payload.get("pending_rows").and_then(Json::as_usize)?,
        shed_overload: payload.get("shed_overload").and_then(json_u64)?,
        shed_circuit: payload.get("shed_circuit").and_then(json_u64)?,
        degraded_rows: payload.get("degraded_rows").and_then(json_u64)?,
        breaker_trips: payload.get("breaker_trips").and_then(json_u64)?,
        expired_flushes: payload.get("expired_flushes").and_then(json_u64)?,
    })
}

/// Encodes an error frame payload: the stable `code`, a display `message`,
/// and per-code structured detail fields (see `PROTOCOL.md`).
pub(crate) fn error_json(error: &NetError) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![
        ("code", Json::Int(i64::from(error.code().unwrap_or(0)))),
        ("message", Json::Str(error.to_string())),
    ];
    match error {
        NetError::Fleet(fleet) => match fleet {
            FleetError::UnknownEndpoint { name }
            | FleetError::NoPreviousVersion { name }
            | FleetError::NoShadow { name } => {
                fields.push(("name", Json::Str(name.clone())));
            }
            FleetError::WidthMismatch { expected, found } => {
                fields.push(("expected", usize_json(*expected)));
                fields.push(("found", usize_json(*found)));
            }
            FleetError::Detector { message } | FleetError::Replication { message } => {
                fields.push(("detail", Json::Str(message.clone())));
            }
            FleetError::Overloaded { depth, limit } => {
                fields.push(("depth", usize_json(*depth)));
                fields.push(("limit", usize_json(*limit)));
            }
            FleetError::DeadlineExceeded { timeout } => {
                fields.push((
                    "timeout_us",
                    u64_json(timeout.as_micros().min(u128::from(u64::MAX)) as u64),
                ));
            }
            FleetError::CircuitOpen => {} // `FleetError` is non_exhaustive *outside* this crate; inside
                                          // it, new variants must be handled here (and given a code).
        },
        NetError::FrameTooLarge { len, limit } => {
            fields.push(("len", usize_json(*len)));
            fields.push(("limit", usize_json(*limit)));
        }
        NetError::VersionMismatch { ours, theirs } => {
            fields.push(("ours", Json::Int(i64::from(*ours))));
            fields.push(("theirs", Json::Int(i64::from(*theirs))));
        }
        _ => {}
    }
    Json::object(fields)
}

/// Decodes an error frame payload into the richest [`NetError`] its code
/// allows. Total: malformed detail fields degrade to [`NetError::Remote`]
/// rather than failing, so an error frame is never itself an error.
pub(crate) fn json_error(payload: &Json) -> NetError {
    let code = payload
        .get("code")
        .and_then(Json::as_i64)
        .ok()
        .and_then(|raw| u16::try_from(raw).ok());
    let message = payload
        .get("message")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_default();
    let remote = |message: String| NetError::Remote {
        code: code.unwrap_or(0),
        message,
    };
    let Some(code) = code else {
        return remote(message);
    };
    let name = || {
        payload
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    let detail = || {
        payload
            .get("detail")
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    match code {
        1 => match name() {
            Ok(name) => NetError::Fleet(FleetError::UnknownEndpoint { name }),
            Err(_) => remote(message),
        },
        2 => match name() {
            Ok(name) => NetError::Fleet(FleetError::NoPreviousVersion { name }),
            Err(_) => remote(message),
        },
        3 => match (
            payload.get("expected").and_then(Json::as_usize),
            payload.get("found").and_then(Json::as_usize),
        ) {
            (Ok(expected), Ok(found)) => {
                NetError::Fleet(FleetError::WidthMismatch { expected, found })
            }
            _ => remote(message),
        },
        4 => match detail() {
            Ok(message) => NetError::Fleet(FleetError::Detector { message }),
            Err(_) => remote(message),
        },
        5 => match detail() {
            Ok(message) => NetError::Fleet(FleetError::Replication { message }),
            Err(_) => remote(message),
        },
        6 => match (
            payload.get("depth").and_then(Json::as_usize),
            payload.get("limit").and_then(Json::as_usize),
        ) {
            (Ok(depth), Ok(limit)) => NetError::Fleet(FleetError::Overloaded { depth, limit }),
            _ => remote(message),
        },
        7 => NetError::Fleet(FleetError::CircuitOpen),
        8 => match payload.get("timeout_us").and_then(json_u64) {
            Ok(us) => NetError::Fleet(FleetError::DeadlineExceeded {
                timeout: Duration::from_micros(us),
            }),
            Err(_) => remote(message),
        },
        9 => match name() {
            Ok(name) => NetError::Fleet(FleetError::NoShadow { name }),
            Err(_) => remote(message),
        },
        CODE_FRAME_TOO_LARGE => match (
            payload.get("len").and_then(Json::as_usize),
            payload.get("limit").and_then(Json::as_usize),
        ) {
            (Ok(len), Ok(limit)) => NetError::FrameTooLarge { len, limit },
            _ => remote(message),
        },
        CODE_VERSION_MISMATCH => match (
            payload.get("ours").and_then(Json::as_i64),
            payload.get("theirs").and_then(Json::as_i64),
        ) {
            // The peer's "ours" is our "theirs": flip perspective so the
            // decoded error reads correctly on this side of the link.
            (Ok(theirs), Ok(ours)) => NetError::VersionMismatch {
                ours: u8::try_from(ours).unwrap_or(PROTOCOL_VERSION),
                theirs: u8::try_from(theirs).unwrap_or_default(),
            },
            _ => remote(message),
        },
        CODE_PROTOCOL => NetError::Protocol { message },
        _ => remote(message),
    }
}

/// Encodes one complete frame for `payload` under `kind`.
pub(crate) fn frame_bytes(kind: FrameKind, payload: &Json) -> Result<Vec<u8>, NetError> {
    hmd_codec::frame::encode_frame(PROTOCOL_VERSION, kind.as_u8(), &payload.to_string()).map_err(
        |error| NetError::Protocol {
            message: error.to_string(),
        },
    )
}

/// One step of incremental frame reading.
#[derive(Debug)]
pub(crate) enum ReadStep {
    /// A complete frame: its header and raw payload bytes.
    Frame(FrameHeader, Vec<u8>),
    /// The read would block (timeout); partial state is preserved and the
    /// next [`FrameReader::poll`] resumes exactly where this one stopped.
    Pending,
    /// The peer closed the stream cleanly between frames or mid-frame.
    Eof,
}

/// Incremental, bounded frame reader.
///
/// Both peers read through this: it never buffers more than one frame
/// (bounded by its `max_frame_bytes`), survives read timeouts without
/// losing partial bytes — which is what lets the server poll for new
/// frames and drain pending responses on one thread — and rejects
/// oversized or desynchronised streams before allocating payload space.
pub(crate) struct FrameReader {
    max_frame_bytes: usize,
    buf: Vec<u8>,
    header: Option<FrameHeader>,
}

impl FrameReader {
    pub(crate) fn new(max_frame_bytes: usize) -> FrameReader {
        FrameReader {
            max_frame_bytes,
            buf: Vec::new(),
            header: None,
        }
    }

    /// Advances the reader by at most one frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on bad magic, [`NetError::FrameTooLarge`] if
    /// the announced payload exceeds the limit, [`NetError::Io`] on any
    /// other socket error. All three poison the stream: the caller must
    /// close it.
    pub(crate) fn poll(&mut self, stream: &mut impl Read) -> Result<ReadStep, NetError> {
        loop {
            if self.header.is_none() && self.buf.len() >= HEADER_LEN {
                let mut head = [0u8; HEADER_LEN];
                head.copy_from_slice(&self.buf[..HEADER_LEN]);
                let header = FrameHeader::parse(&head).map_err(protocol)?;
                let len = header.len as usize;
                if len > self.max_frame_bytes {
                    return Err(NetError::FrameTooLarge {
                        len,
                        limit: self.max_frame_bytes,
                    });
                }
                self.header = Some(header);
            }
            if let Some(header) = self.header {
                let total = HEADER_LEN + header.len as usize;
                if self.buf.len() >= total {
                    let payload = self.buf[HEADER_LEN..total].to_vec();
                    self.buf.drain(..total);
                    self.header = None;
                    return Ok(ReadStep::Frame(header, payload));
                }
            }
            let need = match self.header {
                Some(header) => HEADER_LEN + header.len as usize - self.buf.len(),
                None => HEADER_LEN - self.buf.len(),
            };
            let mut chunk = [0u8; 4096];
            let want = need.min(chunk.len());
            match stream.read(&mut chunk[..want]) {
                Ok(0) => return Ok(ReadStep::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(error)
                    if matches!(error.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
                {
                    return Ok(ReadStep::Pending)
                }
                Err(error) if error.kind() == ErrorKind::Interrupted => {}
                Err(error) => {
                    return Err(NetError::Io {
                        context: "read",
                        message: error.to_string(),
                    })
                }
            }
        }
    }
}

/// Parses a frame's payload bytes into a JSON document.
pub(crate) fn parse_payload(payload: &[u8]) -> Result<Json, NetError> {
    let text = std::str::from_utf8(payload).map_err(|error| NetError::Protocol {
        message: format!("frame payload is not UTF-8: {error}"),
    })?;
    Json::parse(text).map_err(protocol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entropy: f64) -> ShardedReport {
        ShardedReport {
            replica: 1,
            version: 3,
            report: DetectionReport {
                prediction: UncertainPrediction {
                    label: Label::Malware,
                    malware_vote_fraction: 2.0 / 3.0,
                    entropy,
                    num_estimators: 9,
                },
                decision: Decision::Escalate,
            },
        }
    }

    #[test]
    fn requests_round_trip_through_their_payloads() {
        let requests = vec![
            Request::ScoreRow {
                endpoint: "ep".into(),
                key: Some(42),
                row: vec![0.1, -2.5, f64::INFINITY],
            },
            Request::ScoreBatch {
                endpoint: "ep".into(),
                rows: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            },
            Request::Flush {
                endpoint: "ep".into(),
            },
            Request::Deploy {
                endpoint: "ep".into(),
                document: "{\"model\":true}".into(),
            },
            Request::Rollback {
                endpoint: "ep".into(),
            },
            Request::Health {
                endpoint: "ep".into(),
            },
        ];
        for request in requests {
            let json = Json::parse(&request.to_json().to_string()).unwrap();
            let back = Request::from_wire(request.kind(), &json).unwrap();
            assert_eq!(back, request);
            assert!(request.kind().is_request());
        }
    }

    #[test]
    fn reports_cross_the_wire_bit_identical() {
        for entropy in [0.9182958340544896, f64::INFINITY, 0.0] {
            let original = report(entropy);
            let response = Response::ScoreRow(original);
            let json = Json::parse(&response.to_json().to_string()).unwrap();
            let Response::ScoreRow(back) = Response::from_wire(response.kind(), &json).unwrap()
            else {
                panic!("wrong response kind");
            };
            assert_eq!(
                back.report.prediction.entropy.to_bits(),
                original.report.prediction.entropy.to_bits()
            );
            assert_eq!(
                back.report.prediction.malware_vote_fraction.to_bits(),
                original.report.prediction.malware_vote_fraction.to_bits()
            );
            assert_eq!(back, original);
        }
    }

    #[test]
    fn every_fleet_error_survives_the_error_frame_round_trip() {
        let errors = vec![
            FleetError::UnknownEndpoint { name: "ep".into() },
            FleetError::NoPreviousVersion { name: "ep".into() },
            FleetError::WidthMismatch {
                expected: 2,
                found: 5,
            },
            FleetError::Detector {
                message: "bad batch".into(),
            },
            FleetError::Replication {
                message: "bad clone".into(),
            },
            FleetError::Overloaded {
                depth: 64,
                limit: 64,
            },
            FleetError::CircuitOpen,
            FleetError::DeadlineExceeded {
                timeout: Duration::from_millis(250),
            },
            FleetError::NoShadow { name: "ep".into() },
        ];
        for error in errors {
            let net = NetError::Fleet(error.clone());
            let json = Json::parse(&error_json(&net).to_string()).unwrap();
            assert_eq!(json_error(&json), net, "code {}", error.code());
        }
    }

    #[test]
    fn transport_errors_survive_the_error_frame_round_trip() {
        let too_large = NetError::FrameTooLarge {
            len: 5_000_000,
            limit: 4 << 20,
        };
        let json = Json::parse(&error_json(&too_large).to_string()).unwrap();
        assert_eq!(json_error(&json), too_large);

        let mismatch = NetError::VersionMismatch { ours: 1, theirs: 9 };
        let json = Json::parse(&error_json(&mismatch).to_string()).unwrap();
        // Perspective flips across the link: the receiver's `theirs` is the
        // sender's `ours`.
        assert_eq!(
            json_error(&json),
            NetError::VersionMismatch { ours: 9, theirs: 1 }
        );
    }

    #[test]
    fn unknown_codes_degrade_to_remote() {
        let payload = Json::object(vec![
            ("code", Json::Int(9999)),
            ("message", Json::Str("from the future".into())),
        ]);
        assert_eq!(
            json_error(&payload),
            NetError::Remote {
                code: 9999,
                message: "from the future".into()
            }
        );
    }

    #[test]
    fn frame_kinds_round_trip_and_unknowns_are_refused() {
        for byte in 0x01..=0x06u8 {
            let kind = FrameKind::from_u8(byte).unwrap();
            assert_eq!(kind.as_u8(), byte);
            assert!(kind.is_request());
            let reply = FrameKind::from_u8(byte | 0x80).unwrap();
            assert!(!reply.is_request());
        }
        assert_eq!(FrameKind::from_u8(0xFF), Some(FrameKind::Error));
        assert_eq!(FrameKind::from_u8(0x07), None);
        assert_eq!(FrameKind::from_u8(0x00), None);
    }

    #[test]
    fn frame_reader_resumes_across_split_deliveries() {
        let frame = frame_bytes(
            FrameKind::Flush,
            &Request::Flush {
                endpoint: "ep".into(),
            }
            .to_json(),
        )
        .unwrap();
        // Deliver the frame one byte at a time through a reader that sees
        // WouldBlock between bytes.
        struct Trickle {
            bytes: Vec<u8>,
            pos: usize,
            parched: bool,
        }
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.parched {
                    self.parched = false;
                    return Err(std::io::Error::from(ErrorKind::WouldBlock));
                }
                self.parched = true;
                match self.bytes.get(self.pos) {
                    Some(&b) if !buf.is_empty() => {
                        buf[0] = b;
                        self.pos += 1;
                        Ok(1)
                    }
                    _ => Ok(0),
                }
            }
        }
        let mut stream = Trickle {
            bytes: frame.clone(),
            pos: 0,
            parched: false,
        };
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        let mut pendings = 0;
        loop {
            match reader.poll(&mut stream).unwrap() {
                ReadStep::Pending => pendings += 1,
                ReadStep::Frame(header, payload) => {
                    assert_eq!(header.kind, FrameKind::Flush.as_u8());
                    assert_eq!(payload.len() + HEADER_LEN, frame.len());
                    break;
                }
                ReadStep::Eof => panic!("frame should complete before EOF"),
            }
        }
        assert!(pendings >= frame.len() - 1, "state survives every timeout");
    }

    #[test]
    fn oversized_frames_are_refused_before_allocation() {
        let mut header = FrameHeader {
            version: PROTOCOL_VERSION,
            kind: FrameKind::ScoreRow.as_u8(),
            len: 1 << 30,
        }
        .encode()
        .to_vec();
        header.extend_from_slice(&[0u8; 16]);
        let mut reader = FrameReader::new(1024);
        let err = reader.poll(&mut header.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            NetError::FrameTooLarge {
                len,
                limit: 1024
            } if len == 1 << 30
        ));
    }

    #[test]
    fn garbage_magic_is_a_protocol_error() {
        let garbage = [0x58u8, 0x58, 1, 1, 0, 0, 0, 0];
        let mut reader = FrameReader::new(1024);
        let err = reader.poll(&mut garbage.as_slice()).unwrap_err();
        assert!(matches!(err, NetError::Protocol { .. }), "{err}");
    }
}
