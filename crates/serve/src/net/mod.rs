//! Process-separated serving: a loopback wire protocol over the supervised
//! [`ShardedFleet`](crate::ShardedFleet).
//!
//! Everything below this module exists so a *separate process* can score
//! against a fleet with the same supervision guarantees in-process callers
//! get. The protocol (specified normatively in `PROTOCOL.md` at the
//! repository root) frames [`hmd_codec`] JSON documents with the
//! fixed-size header of [`hmd_codec::frame`]: requests for scoring a row,
//! scoring a batch, flushing, deploying, rolling back and querying health,
//! each answered by exactly one typed response or error frame.
//!
//! * [`wire`] — frame kinds, payload schemas, stable error codes, and the
//!   incremental [`FrameReader`](wire) used by both peers.
//! * [`FleetServer`] — a bounded accept/worker loop: one handler thread per
//!   connection (capped by [`ServerConfig::with_max_connections`]; excess
//!   connections are shed with an `Overloaded` error frame), a
//!   per-connection **in-flight frame budget** for backpressure (once the
//!   budget of pipelined score requests is reached the server stops
//!   reading and drains responses — the TCP window, not server memory,
//!   absorbs a pushy client), and per-request deadlines wired through
//!   [`Ticket::wait_deadline`](crate::Ticket::wait_deadline).
//! * [`FleetClient`] — a small blocking client with deterministic
//!   exponential backoff plus jitter ([`RetryPolicy`]) on connection
//!   faults, and **idempotent-only retry**: once a `deploy`/`rollback`
//!   frame may have reached the server, a transport fault surfaces as
//!   [`NetError::InFlight`] instead of being silently retried.
//! * Transport fault injection — the server wraps every accepted
//!   connection in a fault-injecting stream driven by the transport half
//!   of a [`FaultPlan`](crate::FaultPlan) (dropped connection, slow
//!   reader, truncated frame, garbage frame), so the chaos suite
//!   (`tests/net_chaos.rs`) can prove recovery deterministically.
//!
//! Supervision semantics cross the wire losslessly: every
//! [`FleetError`] is mapped to its stable numeric code
//! ([`FleetError::code`](crate::FleetError::code)) inside an error frame
//! and reconstructed client-side, so a remote caller distinguishes
//! `Overloaded` (back off and retry) from `CircuitOpen` (the endpoint is
//! shedding) from `DeadlineExceeded` exactly as an in-process caller
//! would.

pub mod wire;

mod client;
mod server;

pub use client::{ClientConfig, ClientStats, FleetClient, RetryPolicy};
pub use server::{FleetServer, ServerConfig, ServerStats};

use crate::fleet::FleetError;
use std::fmt;

/// Errors of the wire layer: everything that can go wrong between a
/// [`FleetClient`] and a [`FleetServer`] that is *not* an ordinary fleet
/// outcome, plus [`NetError::Fleet`] for the outcomes that are.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A socket operation failed (connect, read, write, timeout). The
    /// connection is unusable; idempotent requests are retried per
    /// [`RetryPolicy`].
    Io {
        /// Which operation failed (`"connect"`, `"write"`, `"read"`...).
        context: &'static str,
        /// Display form of the underlying `std::io::Error`.
        message: String,
    },
    /// The peer violated the framing protocol (bad magic, malformed JSON
    /// payload, unknown or unexpected frame kind). The stream cannot be
    /// trusted past this point and is dropped.
    Protocol {
        /// What was violated.
        message: String,
    },
    /// A frame header announced a payload larger than the receiver's
    /// configured maximum; refused **before** allocating.
    FrameTooLarge {
        /// Announced payload size in bytes.
        len: usize,
        /// The receiver's limit.
        limit: usize,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our version ([`wire::PROTOCOL_VERSION`]).
        ours: u8,
        /// The version byte the peer sent.
        theirs: u8,
    },
    /// A fleet-semantic error, reconstructed from the error frame's stable
    /// code — the same value an in-process caller would have received.
    Fleet(FleetError),
    /// The server sent an error frame with a code this client does not
    /// know (a newer peer). Carried verbatim for logs.
    Remote {
        /// The unrecognised stable code.
        code: u16,
        /// The error frame's message.
        message: String,
    },
    /// The connection died after a **non-idempotent** request (deploy,
    /// rollback) may have reached the server. Retrying could apply the
    /// mutation twice, so the client surfaces the uncertainty instead;
    /// the caller decides (e.g. query `health`/version state first).
    InFlight {
        /// What happened to the connection.
        message: String,
    },
}

impl NetError {
    /// The stable wire code for errors that travel in error frames:
    /// [`FleetError::code`] for fleet errors, the transport range (100+)
    /// for framing errors, `None` for client-local conditions (I/O faults,
    /// in-flight uncertainty) that never cross the wire.
    pub fn code(&self) -> Option<u16> {
        match self {
            NetError::Fleet(error) => Some(error.code()),
            NetError::FrameTooLarge { .. } => Some(wire::CODE_FRAME_TOO_LARGE),
            NetError::VersionMismatch { .. } => Some(wire::CODE_VERSION_MISMATCH),
            NetError::Protocol { .. } => Some(wire::CODE_PROTOCOL),
            NetError::Remote { code, .. } => Some(*code),
            NetError::Io { .. } | NetError::InFlight { .. } => None,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { context, message } => {
                write!(f, "transport error during {context}: {message}")
            }
            NetError::Protocol { message } => write!(f, "protocol violation: {message}"),
            NetError::FrameTooLarge { len, limit } => write!(
                f,
                "frame payload of {len} bytes exceeds the {limit}-byte limit"
            ),
            NetError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak {ours}, peer sent {theirs}"
            ),
            NetError::Fleet(error) => write!(f, "{error}"),
            NetError::Remote { code, message } => {
                write!(f, "remote error with unknown code {code}: {message}")
            }
            NetError::InFlight { message } => {
                write!(f, "non-idempotent request may have been applied: {message}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<FleetError> for NetError {
    fn from(error: FleetError) -> NetError {
        NetError::Fleet(error)
    }
}
