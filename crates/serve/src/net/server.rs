//! The loopback fleet server: bounded accept/worker loop, per-connection
//! in-flight budget, deadline-wired drains, and the fault-injecting stream
//! wrapper that turns a [`FaultPlan`]'s transport schedule into real wire
//! misbehaviour.
//!
//! Backpressure contract (normative in `PROTOCOL.md`):
//!
//! * **Connections** are bounded by [`ServerConfig::with_max_connections`];
//!   an accept beyond the cap is answered with one `Overloaded` error
//!   frame and closed — never queued.
//! * **Frames** are bounded per connection by the in-flight budget: score
//!   requests pipeline until the budget is reached, then the server stops
//!   reading and drains responses in request order. A client that keeps
//!   writing fills the kernel's TCP window and blocks — the server's
//!   memory use stays flat ([`ServerStats::peak_inflight`] proves it).
//! * **Rows** are bounded by each endpoint's
//!   [`AdmissionPolicy`](crate::AdmissionPolicy), exactly as in-process.
//!
//! Request deadlines: every pipelined score request is resolved through
//! [`ShardTicket::wait_deadline`] with the remainder of
//! [`ServerConfig::with_request_deadline`] measured from *enqueue*, so a
//! stuck replica turns into a `DeadlineExceeded` error frame instead of a
//! wedged connection.

use crate::faults::FaultPlan;
use crate::fleet::FleetError;
use crate::net::wire::{
    error_json, frame_bytes, parse_payload, FrameKind, FrameReader, ReadStep, Request, Response,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::net::NetError;
use crate::shard::ShardedFleet;
use crate::sync::LockExt;
use hmd_codec::Json;
use hmd_data::Matrix;
use std::io::Write;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll tick while a connection has no pending responses: bounds how long
/// shutdown and idle detection wait on a quiet socket.
///
/// While responses ARE pending the socket is polled non-blocking instead:
/// any frames the kernel already buffered join the pipeline, and the first
/// `WouldBlock` starts the drain immediately. A timed read here would add
/// kernel timer granularity (several ms) to every request's latency.
const IDLE_TICK: Duration = Duration::from_millis(25);

/// Configuration of a [`FleetServer`]; start from [`ServerConfig::new`]
/// and override per concern.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    max_connections: usize,
    inflight_budget: usize,
    request_deadline: Duration,
    max_frame_bytes: usize,
    fault_plan: FaultPlan,
}

impl ServerConfig {
    /// Defaults: 32 connections, an in-flight budget of 16 frames, a 2 s
    /// request deadline, 4 MiB frames, and no injected faults.
    pub fn new() -> ServerConfig {
        ServerConfig {
            max_connections: 32,
            inflight_budget: 16,
            request_deadline: Duration::from_secs(2),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            fault_plan: FaultPlan::new(),
        }
    }

    /// Caps concurrent connections (clamped to at least 1); excess accepts
    /// are shed with an `Overloaded` error frame.
    #[must_use]
    pub fn with_max_connections(mut self, max_connections: usize) -> ServerConfig {
        self.max_connections = max_connections.max(1);
        self
    }

    /// Caps pipelined score requests per connection (clamped to at least
    /// 1) before the server pauses reads and drains responses.
    #[must_use]
    pub fn with_inflight_budget(mut self, inflight_budget: usize) -> ServerConfig {
        self.inflight_budget = inflight_budget.max(1);
        self
    }

    /// Per-request deadline, measured from enqueue to response, resolved
    /// through [`crate::ShardTicket::wait_deadline`].
    #[must_use]
    pub fn with_request_deadline(mut self, request_deadline: Duration) -> ServerConfig {
        self.request_deadline = request_deadline;
        self
    }

    /// Caps a single frame's payload; larger announcements are answered
    /// with a [`NetError::FrameTooLarge`] error frame and the connection
    /// is closed.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> ServerConfig {
        self.max_frame_bytes = max_frame_bytes.max(hmd_codec::frame::HEADER_LEN);
        self
    }

    /// Installs a transport fault schedule (see
    /// [`FaultPlan::drop_connection`] and friends) applied to accepted
    /// connections. Frame numbers are counted across the server's
    /// lifetime, so each scheduled fault fires exactly once no matter how
    /// many reconnections the faults themselves cause.
    #[must_use]
    pub fn with_fault_plan(mut self, fault_plan: FaultPlan) -> ServerConfig {
        self.fault_plan = fault_plan;
        self
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig::new()
    }
}

/// Observable counters of a running [`FleetServer`] — what the chaos and
/// backpressure tests assert against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerStats {
    /// Connections accepted (including ones later shed).
    pub accepted: u64,
    /// Connections refused with an `Overloaded` error frame because the
    /// connection cap was reached.
    pub shed_connections: u64,
    /// Request frames fully read, across all connections.
    pub frames_read: u64,
    /// Response frames written (including error frames), across all
    /// connections.
    pub frames_written: u64,
    /// Transport faults injected by the fault plan.
    pub faults_injected: u64,
    /// Highest number of pipelined score requests any connection held —
    /// never exceeds the in-flight budget.
    pub peak_inflight: usize,
    /// Connections currently being served.
    pub active_connections: usize,
}

/// State shared between the server handle, the accept loop, and every
/// connection handler.
struct Shared {
    fleet: Arc<ShardedFleet>,
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    shed_connections: AtomicU64,
    frames_read: AtomicU64,
    frames_written: AtomicU64,
    faults_injected: AtomicU64,
    peak_inflight: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A loopback TCP server fronting one [`ShardedFleet`]. Binds on
/// `127.0.0.1` with an OS-assigned port; dropping the handle (or calling
/// [`FleetServer::shutdown`]) stops the accept loop and joins every
/// connection handler.
pub struct FleetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FleetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetServer")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FleetServer {
    /// Binds a loopback listener and starts the accept loop.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind or the accept-thread spawn fails.
    pub fn bind(fleet: Arc<ShardedFleet>, config: ServerConfig) -> Result<FleetServer, NetError> {
        let listener =
            TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).map_err(|error| NetError::Io {
                context: "bind",
                message: error.to_string(),
            })?;
        let addr = listener.local_addr().map_err(|error| NetError::Io {
            context: "bind",
            message: error.to_string(),
        })?;
        let shared = Arc::new(Shared {
            fleet,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            frames_read: AtomicU64::new(0),
            frames_written: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            peak_inflight: AtomicUsize::new(0),
            handles: Mutex::new(Vec::new()),
        });
        let for_loop = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("hmd-net-accept".to_string())
            .spawn(move || accept_loop(&listener, &for_loop))
            .map_err(|error| NetError::Io {
                context: "spawn",
                message: error.to_string(),
            })?;
        Ok(FleetServer {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound loopback address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.shared.accepted.load(Ordering::SeqCst),
            shed_connections: self.shared.shed_connections.load(Ordering::SeqCst),
            frames_read: self.shared.frames_read.load(Ordering::SeqCst),
            frames_written: self.shared.frames_written.load(Ordering::SeqCst),
            faults_injected: self.shared.faults_injected.load(Ordering::SeqCst),
            peak_inflight: self.shared.peak_inflight.load(Ordering::SeqCst),
            active_connections: self.shared.active.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting, wakes the accept loop, and joins every connection
    /// handler (each notices the flag within one poll tick; handlers
    /// blocked in a drain finish within the request deadline).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            // Self-connect to unblock the accept call; the loop re-checks
            // the flag before handling what it accepted.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles = std::mem::take(&mut *self.shared.handles.lock_unpoisoned());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.accepted.fetch_add(1, Ordering::SeqCst);
        let active = shared.active.load(Ordering::SeqCst);
        if active >= shared.config.max_connections {
            shared.shed_connections.fetch_add(1, Ordering::SeqCst);
            shed_connection(stream, active, shared.config.max_connections);
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let for_conn = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("hmd-net-conn".to_string())
            .spawn(move || {
                serve_connection(stream, &for_conn);
                for_conn.active.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(handle) => {
                let mut handles = shared.handles.lock_unpoisoned();
                handles.retain(|h| !h.is_finished());
                handles.push(handle);
            }
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Refuses a connection beyond the cap: one best-effort `Overloaded`
/// error frame, then close. The depth/limit carried are *connections*,
/// not rows — same shedding semantics one level up (PROTOCOL.md § errors).
fn shed_connection(mut stream: TcpStream, depth: usize, limit: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let error = NetError::Fleet(FleetError::Overloaded { depth, limit });
    if let Ok(bytes) = frame_bytes(FrameKind::Error, &error_json(&error)) {
        let _ = stream.write_all(&bytes);
    }
}

/// A [`TcpStream`] whose frame-level reads and writes misbehave on the
/// schedule of the [`FaultPlan`]'s transport half. Frame numbers count
/// across the server's lifetime (shared atomics), so a scheduled fault
/// fires exactly once even though the faults themselves force clients to
/// reconnect.
struct FaultStream<'a> {
    stream: TcpStream,
    plan: &'a FaultPlan,
    reads: &'a AtomicU64,
    writes: &'a AtomicU64,
    injected: &'a AtomicU64,
}

/// Outcome of one read attempt against a [`FaultStream`].
enum ReadOutcome {
    /// A complete request frame (after any scheduled read delay).
    Frame(hmd_codec::frame::FrameHeader, Vec<u8>),
    /// Nothing available within the poll tick.
    Pending,
    /// The connection is over: peer EOF, socket error, or an injected
    /// drop. The handler closes without responding.
    Disconnect,
}

impl FaultStream<'_> {
    /// Advances the reader; applies drop/slow faults when a frame
    /// completes.
    fn read_request(&mut self, reader: &mut FrameReader) -> Result<ReadOutcome, NetError> {
        match reader.poll(&mut self.stream) {
            Ok(ReadStep::Frame(header, payload)) => {
                let frame = self.reads.fetch_add(1, Ordering::SeqCst) + 1;
                if self.plan.drops_read(frame) {
                    self.injected.fetch_add(1, Ordering::SeqCst);
                    return Ok(ReadOutcome::Disconnect);
                }
                if let Some(delay) = self.plan.read_delay(frame) {
                    self.injected.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(delay);
                }
                Ok(ReadOutcome::Frame(header, payload))
            }
            Ok(ReadStep::Pending) => Ok(ReadOutcome::Pending),
            Ok(ReadStep::Eof) => Ok(ReadOutcome::Disconnect),
            Err(NetError::Io { .. }) => Ok(ReadOutcome::Disconnect),
            Err(error) => Err(error),
        }
    }

    /// Writes one response frame; applies truncate/garble faults. `Err`
    /// means the connection is unusable and the handler must close.
    fn write_response(&mut self, kind: FrameKind, payload: &Json) -> Result<(), ()> {
        // The connection loop may have left the socket non-blocking for its
        // drain poll; response writes must block until the frame is out.
        let _ = self.stream.set_nonblocking(false);
        let Ok(mut bytes) = frame_bytes(kind, payload) else {
            return Err(());
        };
        let frame = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.truncates_write(frame) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            // Half the frame always cuts inside the header or payload: the
            // peer sees a length it can never satisfy, then EOF.
            let half = bytes.len() / 2;
            let _ = self.stream.write_all(&bytes[..half]);
            let _ = self.stream.flush();
            return Err(());
        }
        if self.plan.garbles_write(frame) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            bytes[0] = 0x58;
            bytes[1] = 0x58;
        }
        self.stream.write_all(&bytes).map_err(|_| ())
    }
}

/// One pipelined score request awaiting its response slot.
enum Pending {
    /// An admitted row: resolve through `wait_deadline` at drain time.
    Ticket {
        endpoint: String,
        ticket: crate::shard::ShardTicket,
        enqueued: Instant,
    },
    /// A request refused at enqueue; the error frame holds its response
    /// slot so request/response order stays 1:1.
    Refused(FleetError),
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut faults = FaultStream {
        stream,
        plan: &shared.config.fault_plan,
        reads: &shared.frames_read,
        writes: &shared.frames_written,
        injected: &shared.faults_injected,
    };
    let mut reader = FrameReader::new(shared.config.max_frame_bytes);
    let mut pending: Vec<Pending> = Vec::new();
    loop {
        if pending.is_empty() {
            let _ = faults.stream.set_nonblocking(false);
            let _ = faults.stream.set_read_timeout(Some(IDLE_TICK));
        } else {
            let _ = faults.stream.set_nonblocking(true);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = drain(&mut pending, &mut faults, shared);
            return;
        }
        match faults.read_request(&mut reader) {
            Ok(ReadOutcome::Pending) => {
                if !pending.is_empty() && drain(&mut pending, &mut faults, shared).is_err() {
                    return;
                }
            }
            Ok(ReadOutcome::Disconnect) => return,
            Ok(ReadOutcome::Frame(header, payload)) => {
                if header.version != PROTOCOL_VERSION {
                    let _ = drain(&mut pending, &mut faults, shared);
                    let error = NetError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: header.version,
                    };
                    let _ = faults.write_response(FrameKind::Error, &error_json(&error));
                    return;
                }
                let kind = match FrameKind::from_u8(header.kind) {
                    Some(kind) if kind.is_request() => kind,
                    _ => {
                        // The stream is still framed correctly — answer in
                        // place and keep serving.
                        let error = NetError::Protocol {
                            message: format!("unknown request kind {:#04x}", header.kind),
                        };
                        if drain(&mut pending, &mut faults, shared).is_err()
                            || faults
                                .write_response(FrameKind::Error, &error_json(&error))
                                .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                };
                let request =
                    parse_payload(&payload).and_then(|json| Request::from_wire(kind, &json));
                let request = match request {
                    Ok(request) => request,
                    Err(error) => {
                        if drain(&mut pending, &mut faults, shared).is_err()
                            || faults
                                .write_response(FrameKind::Error, &error_json(&error))
                                .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                };
                match request {
                    Request::ScoreRow { endpoint, key, row } => {
                        let admitted = match key {
                            Some(key) => shared.fleet.score_keyed(&endpoint, key, &row),
                            None => shared.fleet.score(&endpoint, &row),
                        };
                        pending.push(match admitted {
                            Ok(ticket) => Pending::Ticket {
                                endpoint,
                                ticket,
                                enqueued: Instant::now(),
                            },
                            Err(error) => Pending::Refused(error),
                        });
                        shared
                            .peak_inflight
                            .fetch_max(pending.len(), Ordering::SeqCst);
                        if pending.len() >= shared.config.inflight_budget
                            && drain(&mut pending, &mut faults, shared).is_err()
                        {
                            return;
                        }
                    }
                    barrier => {
                        // Non-pipelined requests are barriers: every
                        // earlier response is written first, then the
                        // request runs synchronously.
                        if drain(&mut pending, &mut faults, shared).is_err() {
                            return;
                        }
                        let (kind, json) = match execute(barrier, shared) {
                            Ok(response) => (response.kind(), response.to_json()),
                            Err(error) => (FrameKind::Error, error_json(&error)),
                        };
                        if faults.write_response(kind, &json).is_err() {
                            return;
                        }
                    }
                }
            }
            Err(error) => {
                // Protocol-fatal read (bad magic / oversized frame): the
                // stream cannot be re-synchronised. Best-effort error
                // frame, then close.
                let _ = drain(&mut pending, &mut faults, shared);
                let _ = faults.write_response(FrameKind::Error, &error_json(&error));
                return;
            }
        }
    }
}

/// Writes every pending response in request order. Flushes each touched
/// endpoint once first, so responses never wait for the background
/// flusher's `max_wait` deadline.
fn drain(
    pending: &mut Vec<Pending>,
    faults: &mut FaultStream<'_>,
    shared: &Arc<Shared>,
) -> Result<(), ()> {
    if pending.is_empty() {
        return Ok(());
    }
    let mut flushed: Vec<&str> = Vec::new();
    for entry in pending.iter() {
        if let Pending::Ticket { endpoint, .. } = entry {
            if !flushed.contains(&endpoint.as_str()) {
                let _ = shared.fleet.flush(endpoint);
                flushed.push(endpoint);
            }
        }
    }
    let deadline = shared.config.request_deadline;
    for entry in std::mem::take(pending) {
        let (kind, json) = match entry {
            Pending::Ticket {
                ticket, enqueued, ..
            } => {
                let remaining = deadline.saturating_sub(enqueued.elapsed());
                match ticket.wait_deadline(remaining) {
                    Ok(report) => {
                        let response = Response::ScoreRow(report);
                        (response.kind(), response.to_json())
                    }
                    Err(error) => (FrameKind::Error, error_json(&NetError::Fleet(error))),
                }
            }
            Pending::Refused(error) => (FrameKind::Error, error_json(&NetError::Fleet(error))),
        };
        faults.write_response(kind, &json)?;
    }
    Ok(())
}

/// Runs one barrier request synchronously against the fleet.
fn execute(request: Request, shared: &Arc<Shared>) -> Result<Response, NetError> {
    let fleet = &shared.fleet;
    match request {
        Request::ScoreRow { endpoint, key, row } => {
            // Only reachable if a caller routes a score through the
            // barrier path; serve it synchronously with the same deadline.
            let ticket = match key {
                Some(key) => fleet.score_keyed(&endpoint, key, &row)?,
                None => fleet.score(&endpoint, &row)?,
            };
            let _ = fleet.flush(&endpoint);
            let report = ticket.wait_deadline(shared.config.request_deadline)?;
            Ok(Response::ScoreRow(report))
        }
        Request::ScoreBatch { endpoint, rows } => {
            let matrix = Matrix::from_rows(&rows).map_err(|error| NetError::Protocol {
                message: format!("malformed batch: {error}"),
            })?;
            let reports = fleet.score_batch(&endpoint, matrix.view())?;
            Ok(Response::ScoreBatch(reports))
        }
        Request::Flush { endpoint } => {
            let rows = fleet.flush(&endpoint)?;
            Ok(Response::Flush { rows })
        }
        Request::Deploy { endpoint, document } => {
            let detector =
                hmd_core::detector::load(&document).map_err(|error| FleetError::Detector {
                    message: error.to_string(),
                })?;
            let version = fleet.deploy(&endpoint, detector)?;
            Ok(Response::Deploy { version })
        }
        Request::Rollback { endpoint } => {
            let version = fleet.rollback(&endpoint)?;
            Ok(Response::Rollback { version })
        }
        Request::Health { endpoint } => {
            let snapshots = fleet.replica_health(&endpoint)?;
            Ok(Response::Health(snapshots))
        }
    }
}
