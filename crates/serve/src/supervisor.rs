//! The background deadline flusher: one supervisor thread per fleet.
//!
//! Before this module existed, `FlushPolicy::max_wait` only fired when a
//! ticket holder was *blocked in [`crate::Ticket::wait`]* — an idle endpoint
//! whose callers polled with `try_wait`, or simply walked away, sat on its
//! open tile forever. The supervisor makes the deadline real: each
//! [`crate::DetectorFleet`] / [`crate::ShardedFleet`] lazily spawns **one**
//! flusher thread that sleeps until the earliest open-tile deadline across
//! all endpoints (replicas included), drains every expired tile through the
//! normal batch path, and goes back to sleep. With no open tile anywhere it
//! parks indefinitely — an idle fleet costs zero wakeups.
//!
//! Coordination is a single epoch-counted condvar:
//!
//! * opening a tile bumps the epoch via [`TileNotifier::notify`] (outside
//!   the tile lock — the notification never nests inside a critical
//!   section), waking the flusher to re-derive its earliest deadline;
//! * dropping the fleet sets the shutdown flag and **joins** the thread, so
//!   no flusher outlives its endpoints;
//! * every lock site goes through [`crate::sync`], so a panicking scorer
//!   thread cannot poison the supervisor to death — the flusher recovers
//!   the guard and keeps flushing.
//!
//! The flusher never holds a lock across a drain (or any sleep): it
//! snapshots the endpoint list, releases, and calls
//! [`crate::fleet::Endpoint::flush_expired`], which itself takes the tile
//! out under the lock and drains outside it. This is the guard discipline
//! `hmd_lint`'s `lock-discipline` rule checks for the serve crate.

use crate::fleet::Endpoint;
use crate::sync::{unpoison, LockExt};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

#[derive(Default)]
struct State {
    shutdown: bool,
    /// Bumped whenever a tile opens; the flusher re-derives its earliest
    /// deadline whenever the epoch moves, so a tile opened between its scan
    /// and its sleep can never be missed (the classic lost-wakeup shape).
    epoch: u64,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
}

/// Handed to every [`Endpoint`] at construction: pokes the fleet's flusher
/// when a fresh tile (with a fresh deadline) opens. Cloneable and cheap;
/// calling it outside any tile lock is the caller's contract.
#[derive(Clone)]
pub(crate) struct TileNotifier {
    shared: Arc<Shared>,
}

impl TileNotifier {
    pub(crate) fn notify(&self) {
        {
            let mut state = self.shared.state.lock_unpoisoned();
            state.epoch = state.epoch.wrapping_add(1);
        }
        self.shared.wake.notify_all();
    }
}

/// The per-fleet flusher thread handle: lazily spawned, joined on fleet
/// drop.
pub(crate) struct Supervisor {
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Supervisor {
    pub(crate) fn new() -> Supervisor {
        Supervisor {
            shared: Arc::new(Shared {
                state: Mutex::new(State::default()),
                wake: Condvar::new(),
            }),
            handle: Mutex::new(None),
        }
    }

    pub(crate) fn notifier(&self) -> TileNotifier {
        TileNotifier {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Spawns the flusher thread if it is not already running. `snapshot`
    /// returns the current endpoint (or replica) list, or `None` once the
    /// owning fleet is gone — it must hold only a `Weak` reference back, or
    /// the flusher would keep its own fleet alive forever.
    ///
    /// If the OS refuses the thread, the fleet degrades to the waiter-driven
    /// flush: blocked `wait()` callers still fire `max_wait` themselves.
    pub(crate) fn ensure_spawned<F>(&self, snapshot: F)
    where
        F: Fn() -> Option<Vec<Arc<Endpoint>>> + Send + 'static,
    {
        let mut handle = self.handle.lock_unpoisoned();
        if handle.is_some() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        *handle = std::thread::Builder::new()
            .name("hmd-serve-flusher".into())
            .spawn(move || run(&shared, &snapshot))
            .ok();
    }

    /// Signals shutdown and joins the flusher. Idempotent; called from the
    /// owning fleet's `Drop`.
    pub(crate) fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock_unpoisoned();
            state.shutdown = true;
        }
        self.shared.wake.notify_all();
        let handle = self.handle.lock_unpoisoned().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// The flusher loop: scan → flush expired → sleep until the earliest
/// deadline (or forever when no tile is open) → repeat. Exits on shutdown
/// or when the owning fleet has been dropped (`snapshot` returns `None`).
fn run<F>(shared: &Shared, snapshot: &F)
where
    F: Fn() -> Option<Vec<Arc<Endpoint>>>,
{
    loop {
        let seen = {
            let state = shared.state.lock_unpoisoned();
            if state.shutdown {
                return;
            }
            state.epoch
        };
        let endpoints = match snapshot() {
            Some(endpoints) => endpoints,
            None => return,
        };
        // No guard is live here: expired tiles drain through the same
        // outside-the-lock path as caller-driven flushes.
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        for endpoint in &endpoints {
            endpoint.flush_expired(now);
            if let Some(deadline) = endpoint.tile_deadline() {
                next = Some(next.map_or(deadline, |n: Instant| n.min(deadline)));
            }
        }
        let mut state = shared.state.lock_unpoisoned();
        while !state.shutdown && state.epoch == seen {
            match next {
                Some(deadline) => {
                    let now = Instant::now();
                    if deadline <= now {
                        break;
                    }
                    let (guard, _) = unpoison(shared.wake.wait_timeout(state, deadline - now));
                    state = guard;
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                None => state = unpoison(shared.wake.wait(state)),
            }
        }
        if state.shutdown {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_without_spawn_is_a_no_op() {
        let supervisor = Supervisor::new();
        supervisor.shutdown();
        supervisor.shutdown();
    }

    #[test]
    fn spawned_flusher_exits_when_its_fleet_is_gone() {
        let supervisor = Supervisor::new();
        // A snapshot whose owner is already gone: the thread must exit on
        // its own, and shutdown must join it without hanging.
        supervisor.ensure_spawned(|| None);
        supervisor.notifier().notify();
        supervisor.shutdown();
    }
}
