//! Dataset containers and preprocessing primitives shared by every crate in the
//! HMD uncertainty workspace.
//!
//! The crate provides:
//!
//! * [`Matrix`] — a small dense row-major `f64` matrix used as the feature
//!   container throughout the workspace.
//! * [`Label`] — the binary benign/malware classification label.
//! * [`Dataset`] — features + labels + application provenance for every sample.
//! * [`split`] — train/test and known/unknown partitioning utilities.
//! * [`scaler`] — standardisation and min-max scaling.
//! * [`taxonomy`] — the Table I style summary of a generated corpus.
//! * [`stream`] — the constant-memory [`stream::CorpusStream`] contract that
//!   the simulator crates implement for corpus-scale robustness runs.
//!
//! # Example
//!
//! ```
//! use hmd_data::{Dataset, Label, Matrix};
//!
//! # fn main() -> Result<(), hmd_data::DataError> {
//! let features = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.2]])?;
//! let labels = vec![Label::Benign, Label::Malware];
//! let dataset = Dataset::new(features, labels)?;
//! assert_eq!(dataset.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod dataset;
mod error;
mod label;
mod matrix;
pub mod scaler;
pub mod split;
pub mod stream;
pub mod taxonomy;

pub use dataset::{AppId, Dataset, SampleMeta};
pub use error::DataError;
pub use label::Label;
pub use matrix::{ColumnarView, Matrix, PresortedView, RowsView};
