//! Feature scaling.
//!
//! Both HMD pipelines standardise features before dimensionality reduction and
//! classification (Fig. 1 of the paper). [`StandardScaler`] centres every
//! column to zero mean / unit variance, [`MinMaxScaler`] maps every column to
//! `[0, 1]`.

use crate::{DataError, Dataset, Matrix, RowsView};
use hmd_codec::{CodecError, Json, JsonCodec};
use serde::{Deserialize, Serialize};

/// Zero-mean / unit-variance standardisation fitted on a training matrix.
///
/// Columns with zero variance are left centred but unscaled so that constant
/// features do not produce NaNs.
///
/// # Example
///
/// ```
/// use hmd_data::{Matrix, scaler::StandardScaler};
///
/// # fn main() -> Result<(), hmd_data::DataError> {
/// let train = Matrix::from_rows(&[vec![0.0], vec![2.0]])?;
/// let scaler = StandardScaler::fit(&train);
/// let scaled = scaler.transform(&train)?;
/// assert!((scaled[(0, 0)] + 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to the columns of `matrix`.
    pub fn fit(matrix: &Matrix) -> StandardScaler {
        let means = matrix.column_means();
        let stds = matrix
            .column_stds()
            .into_iter()
            .map(|s| if s > 1e-12 { s } else { 1.0 })
            .collect();
        StandardScaler { means, stds }
    }

    /// Fitted per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-column standard deviations (zero-variance columns report 1).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the fitted transform to a batch of rows — a whole matrix, a
    /// borrowed row range ([`Matrix::rows_view`]) or a single-signature view.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when the column count differs
    /// from the fitted one.
    pub fn transform<'a>(&self, batch: impl Into<RowsView<'a>>) -> Result<Matrix, DataError> {
        let batch = batch.into();
        if batch.cols() != self.means.len() {
            return Err(DataError::DimensionMismatch {
                context: "scaler feature count",
                expected: self.means.len(),
                found: batch.cols(),
            });
        }
        // Single pass: read each source row once, write each scaled value
        // once (no clone-then-mutate double traversal on the batch path).
        let mut data = Vec::with_capacity(batch.rows() * batch.cols());
        for row in batch.iter_rows() {
            data.extend(
                row.iter()
                    .zip(self.means.iter().zip(&self.stds))
                    .map(|(v, (mean, std))| (v - mean) / std),
            );
        }
        Matrix::from_vec(batch.rows(), batch.cols(), data)
    }

    /// Applies the inverse of the fitted transform.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when the column count differs
    /// from the fitted one.
    pub fn inverse_transform(&self, matrix: &Matrix) -> Result<Matrix, DataError> {
        if matrix.cols() != self.means.len() {
            return Err(DataError::DimensionMismatch {
                context: "scaler feature count",
                expected: self.means.len(),
                found: matrix.cols(),
            });
        }
        let mut data = Vec::with_capacity(matrix.rows() * matrix.cols());
        for row in matrix.iter_rows() {
            data.extend(
                row.iter()
                    .zip(self.means.iter().zip(&self.stds))
                    .map(|(v, (mean, std))| v * std + mean),
            );
        }
        Matrix::from_vec(matrix.rows(), matrix.cols(), data)
    }

    /// Transforms a single feature vector in place.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when the length differs from
    /// the fitted column count.
    pub fn transform_row(&self, row: &mut [f64]) -> Result<(), DataError> {
        if row.len() != self.means.len() {
            return Err(DataError::DimensionMismatch {
                context: "scaler feature count",
                expected: self.means.len(),
                found: row.len(),
            });
        }
        for (v, (mean, std)) in row.iter_mut().zip(self.means.iter().zip(&self.stds)) {
            *v = (*v - mean) / std;
        }
        Ok(())
    }

    /// Convenience: fits on the dataset's features and returns the scaled
    /// dataset alongside the fitted scaler.
    ///
    /// # Errors
    ///
    /// Propagates dataset reconstruction errors (which cannot occur for a
    /// well-formed input).
    pub fn fit_dataset(dataset: &Dataset) -> Result<(StandardScaler, Dataset), DataError> {
        let scaler = StandardScaler::fit(dataset.features());
        let scaled = scaler.transform_dataset(dataset)?;
        Ok((scaler, scaled))
    }

    /// Applies the fitted transform to a dataset, preserving labels, names and
    /// metadata.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when the feature count differs
    /// from the fitted one.
    pub fn transform_dataset(&self, dataset: &Dataset) -> Result<Dataset, DataError> {
        let features = self.transform(dataset.features())?;
        let mut ds = if dataset.meta().len() == dataset.len() {
            Dataset::with_meta(features, dataset.labels().to_vec(), dataset.meta().to_vec())?
        } else {
            Dataset::new(features, dataset.labels().to_vec())?
        };
        ds.set_feature_names(dataset.feature_names().iter().cloned())?;
        Ok(ds)
    }
}

impl JsonCodec for StandardScaler {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("means", self.means.to_json()),
            ("stds", self.stds.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<StandardScaler, CodecError> {
        let means = Vec::<f64>::from_json(json.get("means")?)?;
        let stds = Vec::<f64>::from_json(json.get("stds")?)?;
        if means.len() != stds.len() {
            return Err(CodecError::new(format!(
                "scaler: {} means but {} stds",
                means.len(),
                stds.len()
            )));
        }
        Ok(StandardScaler { means, stds })
    }
}

/// Min-max scaling to `[0, 1]` fitted on a training matrix.
///
/// Columns with zero range are mapped to `0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler to the columns of `matrix`.
    pub fn fit(matrix: &Matrix) -> MinMaxScaler {
        let mins = matrix.column_mins();
        let maxs = matrix.column_maxs();
        let ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| {
                let r = hi - lo;
                if r > 1e-12 {
                    r
                } else {
                    1.0
                }
            })
            .collect();
        MinMaxScaler { mins, ranges }
    }

    /// Applies the fitted transform to a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when the column count differs
    /// from the fitted one.
    pub fn transform(&self, matrix: &Matrix) -> Result<Matrix, DataError> {
        if matrix.cols() != self.mins.len() {
            return Err(DataError::DimensionMismatch {
                context: "scaler feature count",
                expected: self.mins.len(),
                found: matrix.cols(),
            });
        }
        let mut data = Vec::with_capacity(matrix.rows() * matrix.cols());
        for row in matrix.iter_rows() {
            data.extend(
                row.iter()
                    .zip(self.mins.iter().zip(&self.ranges))
                    .map(|(v, (min, range))| (v - min) / range),
            );
        }
        Matrix::from_vec(matrix.rows(), matrix.cols(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 10.0, 5.0],
            vec![3.0, 20.0, 5.0],
            vec![5.0, 30.0, 5.0],
        ])
        .expect("valid rows")
    }

    #[test]
    fn standard_scaler_centres_and_scales() {
        let m = matrix();
        let scaler = StandardScaler::fit(&m);
        let out = scaler.transform(&m).unwrap();
        let means = out.column_means();
        let stds = out.column_stds();
        assert!(means.iter().take(2).all(|m| m.abs() < 1e-12));
        assert!(stds.iter().take(2).all(|s| (s - 1.0).abs() < 1e-12));
        // constant column stays finite
        assert!(out.column(2).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn standard_scaler_round_trips() {
        let m = matrix();
        let scaler = StandardScaler::fit(&m);
        let back = scaler
            .inverse_transform(&scaler.transform(&m).unwrap())
            .unwrap();
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_scaler_rejects_wrong_width() {
        let scaler = StandardScaler::fit(&matrix());
        let narrow = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(scaler.transform(&narrow).is_err());
        assert!(scaler.inverse_transform(&narrow).is_err());
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let m = matrix();
        let scaler = MinMaxScaler::fit(&m);
        let out = scaler.transform(&m).unwrap();
        for v in out.as_slice() {
            assert!((-1e-12..=1.0 + 1e-12).contains(v));
        }
        assert_eq!(out[(0, 0)], 0.0);
        assert_eq!(out[(2, 0)], 1.0);
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let m = matrix();
        let scaler = StandardScaler::fit(&m);
        let full = scaler.transform(&m).unwrap();
        let mut row = m.row(1).to_vec();
        scaler.transform_row(&mut row).unwrap();
        assert_eq!(row, full.row(1));
    }
}
