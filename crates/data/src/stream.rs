//! Streaming corpus abstraction: constant-memory, seeded signature sources.
//!
//! The batch builders ([`Dataset`]-producing corpus generators) materialise
//! every row before anything can consume one; that caps how far a stress run
//! can scale. A [`CorpusStream`] inverts the contract: it is an ordinary
//! [`Iterator`] yielding one [`StreamRecord`] at a time, so a robustness
//! sweep can fold over millions of signatures while holding exactly one row
//! in memory. Streams are **seeded**: the same seed yields a bit-identical
//! row sequence, which is what makes corpus-scale adversarial benchmarks
//! reproducible.
//!
//! Attack layers (mimicry, drift schedules, sensor faults — see the
//! `hmd_threat` crate) are stream adaptors: they wrap any [`CorpusStream`]
//! and yield perturbed records, composing like iterator adaptors do.
//!
//! # Example
//!
//! ```
//! use hmd_data::stream::{CorpusStream, StreamRecord};
//! use hmd_data::{Label, SampleMeta, AppId};
//!
//! /// A toy two-feature stream alternating classes forever.
//! struct Toy { row: usize }
//! impl Iterator for Toy {
//!     type Item = StreamRecord;
//!     fn next(&mut self) -> Option<StreamRecord> {
//!         let malware = self.row % 2 == 0;
//!         self.row += 1;
//!         Some(StreamRecord {
//!             features: if malware { vec![0.9, 0.8] } else { vec![0.1, 0.2] },
//!             label: Label::from(malware),
//!             meta: SampleMeta::known(AppId(1)),
//!         })
//!     }
//! }
//! impl CorpusStream for Toy {
//!     fn num_features(&self) -> usize { 2 }
//! }
//!
//! let dataset = hmd_data::stream::collect_dataset(&mut Toy { row: 0 }, 8).unwrap();
//! assert_eq!(dataset.len(), 8);
//! assert_eq!(dataset.num_features(), 2);
//! ```

use crate::{DataError, Dataset, Label, Matrix, SampleMeta};

/// One streamed signature row: features, ground truth, and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRecord {
    /// The signature vector.
    pub features: Vec<f64>,
    /// Ground-truth class of the application that produced the signature.
    pub label: Label,
    /// Which application produced it, and whether that application is held
    /// out of training (the zero-day bucket).
    pub meta: SampleMeta,
}

/// A constant-memory, seeded signature source.
///
/// Implementations yield rows forever (or until their configured corpus is
/// exhausted) without materialising the corpus; callers bound consumption
/// with [`Iterator::take`] or fold over chunks. Two streams constructed with
/// the same configuration and seed must yield bit-identical sequences.
pub trait CorpusStream: Iterator<Item = StreamRecord> {
    /// Width of every yielded feature vector.
    fn num_features(&self) -> usize;
}

/// Materialises the next `rows` records of a stream into a [`Dataset`]
/// (features + labels + provenance metadata).
///
/// This is the bridge from the streaming world back to the batch APIs
/// (training, `detect_batch`): stress harnesses stream millions of rows but
/// still train challengers on bounded windows.
///
/// # Errors
///
/// Returns [`DataError::Empty`] when the stream ends before yielding a
/// single row, and propagates matrix-construction errors when the stream
/// yields ragged rows (a bug in the stream, not a user error).
pub fn collect_dataset<S>(stream: &mut S, rows: usize) -> Result<Dataset, DataError>
where
    S: CorpusStream + ?Sized,
{
    let mut features = Vec::new();
    let mut labels = Vec::new();
    let mut meta = Vec::new();
    for record in stream.take(rows) {
        features.push(record.features);
        labels.push(record.label);
        meta.push(record.meta);
    }
    let matrix = Matrix::from_rows(&features)?;
    Dataset::with_meta(matrix, labels, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AppId;

    struct Toy {
        row: usize,
        limit: usize,
    }

    impl Iterator for Toy {
        type Item = StreamRecord;
        fn next(&mut self) -> Option<StreamRecord> {
            if self.row == self.limit {
                return None;
            }
            let malware = self.row.is_multiple_of(2);
            let x = self.row as f64;
            self.row += 1;
            Some(StreamRecord {
                features: vec![x, -x],
                label: Label::from(malware),
                meta: SampleMeta::unknown(AppId(7)),
            })
        }
    }

    impl CorpusStream for Toy {
        fn num_features(&self) -> usize {
            2
        }
    }

    #[test]
    fn collect_dataset_preserves_order_labels_and_meta() {
        let mut stream = Toy { row: 0, limit: 100 };
        let dataset = collect_dataset(&mut stream, 5).unwrap();
        assert_eq!(dataset.len(), 5);
        assert_eq!(dataset.features().row(3), &[3.0, -3.0]);
        assert_eq!(dataset.labels()[0], Label::Malware);
        assert_eq!(dataset.labels()[1], Label::Benign);
        assert!(dataset.meta().iter().all(|m| m.unknown_app));
        // The stream resumes where collection stopped.
        let rest = collect_dataset(&mut stream, 5).unwrap();
        assert_eq!(rest.features().row(0), &[5.0, -5.0]);
    }

    #[test]
    fn collect_dataset_on_exhausted_stream_is_an_error() {
        let mut stream = Toy { row: 0, limit: 0 };
        assert!(matches!(
            collect_dataset(&mut stream, 4),
            Err(DataError::Empty { .. })
        ));
    }

    #[test]
    fn collect_dataset_truncates_at_stream_end() {
        let mut stream = Toy { row: 0, limit: 3 };
        let dataset = collect_dataset(&mut stream, 10).unwrap();
        assert_eq!(dataset.len(), 3);
    }
}
