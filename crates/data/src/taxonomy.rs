//! Dataset taxonomy summaries (Table I of the paper).

use crate::split::KnownUnknownSplit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary of a corpus split into train / known-test / unknown buckets, i.e.
/// one block of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetTaxonomy {
    /// Human readable dataset name (e.g. "DVFS" or "HPC").
    pub name: String,
    /// Number of training samples.
    pub train: usize,
    /// Number of known (in-distribution) test samples.
    pub test_known: usize,
    /// Number of unknown (out-of-distribution) samples.
    pub unknown: usize,
    /// Number of benign training samples.
    pub train_benign: usize,
    /// Number of malware training samples.
    pub train_malware: usize,
    /// Number of distinct known applications.
    pub known_apps: usize,
    /// Number of distinct unknown applications.
    pub unknown_apps: usize,
}

impl DatasetTaxonomy {
    /// Builds the taxonomy from a three-way corpus split.
    pub fn from_split(name: impl Into<String>, split: &KnownUnknownSplit) -> DatasetTaxonomy {
        let counts = split.train.class_counts();
        let mut known_apps = split.train.app_ids();
        known_apps.extend(split.test_known.app_ids());
        known_apps.sort_unstable();
        known_apps.dedup();
        DatasetTaxonomy {
            name: name.into(),
            train: split.train.len(),
            test_known: split.test_known.len(),
            unknown: split.unknown.len(),
            train_benign: counts[0],
            train_malware: counts[1],
            known_apps: known_apps.len(),
            unknown_apps: split.unknown.app_ids().len(),
        }
    }

    /// Total number of samples in the corpus.
    pub fn total(&self) -> usize {
        self.train + self.test_known + self.unknown
    }
}

impl fmt::Display for DatasetTaxonomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.name)?;
        writeln!(f, "  Train          {:>8}", self.train)?;
        writeln!(f, "  Test (Known)   {:>8}", self.test_known)?;
        writeln!(f, "  Unknown        {:>8}", self.unknown)?;
        write!(
            f,
            "  apps: {} known / {} unknown, train classes: {} benign / {} malware",
            self.known_apps, self.unknown_apps, self.train_benign, self.train_malware
        )
    }
}

/// The sample counts reported in the paper's Table I, kept as constants so the
/// simulators and benches can target the same corpus scale.
pub mod paper {
    /// DVFS training samples.
    pub const DVFS_TRAIN: usize = 2100;
    /// DVFS known test samples.
    pub const DVFS_TEST_KNOWN: usize = 700;
    /// DVFS unknown samples.
    pub const DVFS_UNKNOWN: usize = 284;
    /// HPC training samples.
    pub const HPC_TRAIN: usize = 44_605;
    /// HPC known test samples.
    pub const HPC_TEST_KNOWN: usize = 6372;
    /// HPC unknown samples.
    pub const HPC_UNKNOWN: usize = 12_727;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::known_unknown_split;
    use crate::{AppId, Dataset, Label, Matrix, SampleMeta};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn taxonomy_counts_match_split() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let labels: Vec<Label> = (0..60).map(|i| Label::from(i % 2 == 0)).collect();
        let meta: Vec<SampleMeta> = (0..60)
            .map(|i| {
                if i < 12 {
                    SampleMeta::unknown(AppId(99))
                } else {
                    SampleMeta::known(AppId((i % 4) as u32))
                }
            })
            .collect();
        let corpus = Dataset::with_meta(Matrix::from_rows(&rows).unwrap(), labels, meta).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let split = known_unknown_split(&corpus, 0.25, &mut rng).unwrap();
        let tax = DatasetTaxonomy::from_split("toy", &split);
        assert_eq!(tax.total(), 60);
        assert_eq!(tax.unknown, 12);
        assert_eq!(tax.unknown_apps, 1);
        assert_eq!(tax.known_apps, 4);
        assert_eq!(tax.train + tax.test_known, 48);
        let text = tax.to_string();
        assert!(text.contains("toy"));
        assert!(text.contains("Unknown"));
    }

    #[test]
    fn paper_constants_match_table_one() {
        assert_eq!(paper::DVFS_TRAIN, 2100);
        assert_eq!(paper::HPC_UNKNOWN, 12_727);
    }
}
