use crate::matrix::{ColumnarView, PresortedView};
use crate::{DataError, Label, Matrix};
use serde::{Deserialize, Serialize};

/// Identifier of the application (or malware family) a signature was collected
/// from.
///
/// The paper partitions signatures into *known* and *unknown* buckets **by
/// application**, not by sample, so the provenance of every sample must travel
/// with the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u32);

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// Per-sample metadata: which application produced the signature and whether
/// that application belongs to the *known* or *unknown* bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleMeta {
    /// Application the signature was derived from.
    pub app: AppId,
    /// `true` when the application was held out of training entirely
    /// (the paper's "unknown"/zero-day bucket).
    pub unknown_app: bool,
}

impl SampleMeta {
    /// Metadata for a sample from a known (in-distribution) application.
    pub fn known(app: AppId) -> SampleMeta {
        SampleMeta {
            app,
            unknown_app: false,
        }
    }

    /// Metadata for a sample from an unknown (out-of-distribution) application.
    pub fn unknown(app: AppId) -> SampleMeta {
        SampleMeta {
            app,
            unknown_app: true,
        }
    }
}

/// A labelled feature dataset with optional per-sample provenance.
///
/// Rows of [`Dataset::features`] are hardware signatures, `labels[i]` is the
/// ground-truth class of row `i`, and `meta[i]` (when present) records the
/// application the signature came from.
///
/// # Example
///
/// ```
/// use hmd_data::{Dataset, Label, Matrix};
///
/// # fn main() -> Result<(), hmd_data::DataError> {
/// let features = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]])?;
/// let ds = Dataset::new(features, vec![Label::Benign, Label::Malware])?;
/// assert_eq!(ds.class_counts(), [1, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<Label>,
    feature_names: Vec<String>,
    meta: Vec<SampleMeta>,
}

impl Dataset {
    /// Creates a dataset from features and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when `labels.len()` differs
    /// from the number of feature rows, and [`DataError::Empty`] for an empty
    /// dataset.
    pub fn new(features: Matrix, labels: Vec<Label>) -> Result<Dataset, DataError> {
        if features.rows() == 0 {
            return Err(DataError::Empty { context: "dataset" });
        }
        if features.rows() != labels.len() {
            return Err(DataError::DimensionMismatch {
                context: "label count",
                expected: features.rows(),
                found: labels.len(),
            });
        }
        let feature_names = (0..features.cols()).map(|i| format!("f{i}")).collect();
        Ok(Dataset {
            features,
            labels,
            feature_names,
            meta: Vec::new(),
        })
    }

    /// Creates a dataset carrying per-sample provenance metadata.
    ///
    /// # Errors
    ///
    /// Same as [`Dataset::new`], plus a mismatch error when `meta.len()`
    /// differs from the number of rows.
    pub fn with_meta(
        features: Matrix,
        labels: Vec<Label>,
        meta: Vec<SampleMeta>,
    ) -> Result<Dataset, DataError> {
        if meta.len() != features.rows() {
            return Err(DataError::DimensionMismatch {
                context: "metadata count",
                expected: features.rows(),
                found: meta.len(),
            });
        }
        let mut ds = Dataset::new(features, labels)?;
        ds.meta = meta;
        Ok(ds)
    }

    /// Replaces the auto-generated feature names.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when the number of names does
    /// not equal the number of feature columns.
    pub fn set_feature_names<S: Into<String>>(
        &mut self,
        names: impl IntoIterator<Item = S>,
    ) -> Result<(), DataError> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.len() != self.features.cols() {
            return Err(DataError::DimensionMismatch {
                context: "feature name count",
                expected: self.features.cols(),
                found: names.len(),
            });
        }
        self.feature_names = names;
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// `true` when the dataset has no samples (never true for constructed
    /// datasets, kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Column-major view of the feature matrix, built lazily and cached (see
    /// [`Matrix::columnar`]). The fast-fit training engine reads features
    /// through this view, so every zero-copy bootstrap replicate of this
    /// dataset shares one transposed copy.
    pub fn columnar(&self) -> ColumnarView<'_> {
        self.features.columnar()
    }

    /// Per-feature sorted row orders of the feature matrix, built lazily and
    /// cached (see [`Matrix::presorted_rows`]). The fast-fit training engine
    /// derives every tree's — and every bootstrap replicate's — presorted
    /// index arrays from this single shared sort.
    pub fn presorted_rows(&self) -> PresortedView<'_> {
        self.features.presorted_rows()
    }

    /// The label vector.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Feature names (auto-generated `f0..fN` unless overridden).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Per-sample metadata; empty when the dataset was built without
    /// provenance.
    pub fn meta(&self) -> &[SampleMeta] {
        &self.meta
    }

    /// Feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn sample(&self, i: usize) -> (&[f64], Label) {
        (self.features.row(i), self.labels[i])
    }

    /// Number of samples per class, indexed by [`Label::index`].
    pub fn class_counts(&self) -> [usize; Label::NUM_CLASSES] {
        let mut counts = [0usize; Label::NUM_CLASSES];
        for label in &self.labels {
            counts[label.index()] += 1;
        }
        counts
    }

    /// Fraction of malware samples.
    pub fn malware_fraction(&self) -> f64 {
        let counts = self.class_counts();
        counts[Label::Malware.index()] as f64 / self.len() as f64
    }

    /// Builds a new dataset from the selected sample indices (repeats allowed,
    /// as required by bootstrap resampling).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let features = self.features.select_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        let meta = if self.meta.is_empty() {
            Vec::new()
        } else {
            indices.iter().map(|&i| self.meta[i]).collect()
        };
        Dataset {
            features,
            labels,
            feature_names: self.feature_names.clone(),
            meta,
        }
    }

    /// Builds a new dataset restricted to the selected feature columns.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of bounds.
    pub fn select_features(&self, columns: &[usize]) -> Dataset {
        let features = self.features.select_columns(columns);
        let feature_names = columns
            .iter()
            .map(|&c| self.feature_names[c].clone())
            .collect();
        Dataset {
            features,
            labels: self.labels.clone(),
            feature_names,
            meta: self.meta.clone(),
        }
    }

    /// Concatenates two datasets with identical feature spaces.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when the feature counts differ.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, DataError> {
        let features = self.features.vstack(&other.features)?;
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let meta = if self.meta.is_empty() && other.meta.is_empty() {
            Vec::new()
        } else if self.meta.len() == self.len() && other.meta.len() == other.len() {
            let mut m = self.meta.clone();
            m.extend_from_slice(&other.meta);
            m
        } else {
            Vec::new()
        };
        Ok(Dataset {
            features,
            labels,
            feature_names: self.feature_names.clone(),
            meta,
        })
    }

    /// Distinct application identifiers present in the dataset, in ascending
    /// order. Empty when the dataset carries no metadata.
    pub fn app_ids(&self) -> Vec<AppId> {
        let mut ids: Vec<AppId> = self.meta.iter().map(|m| m.app).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Indices of the samples belonging to the given applications.
    pub fn indices_of_apps(&self, apps: &[AppId]) -> Vec<usize> {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| apps.contains(&m.app))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Matrix::from_rows(&[
            vec![0.0, 0.1],
            vec![0.9, 1.0],
            vec![0.2, 0.2],
            vec![0.8, 0.7],
        ])
        .expect("valid rows");
        let labels = vec![Label::Benign, Label::Malware, Label::Benign, Label::Malware];
        let meta = vec![
            SampleMeta::known(AppId(1)),
            SampleMeta::known(AppId(2)),
            SampleMeta::unknown(AppId(3)),
            SampleMeta::known(AppId(2)),
        ];
        Dataset::with_meta(features, labels, meta).expect("consistent dataset")
    }

    #[test]
    fn new_validates_label_count() {
        let features = Matrix::from_rows(&[vec![1.0]]).expect("valid");
        assert!(Dataset::new(features, vec![]).is_err());
    }

    #[test]
    fn class_counts_and_fraction() {
        let ds = toy();
        assert_eq!(ds.class_counts(), [2, 2]);
        assert_eq!(ds.malware_fraction(), 0.5);
    }

    #[test]
    fn select_keeps_meta_aligned() {
        let ds = toy();
        let sub = ds.select(&[3, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels()[0], Label::Malware);
        assert_eq!(sub.meta()[0].app, AppId(2));
        assert_eq!(sub.meta()[1].app, AppId(1));
    }

    #[test]
    fn select_features_projects_names() {
        let mut ds = toy();
        ds.set_feature_names(["mean", "peak"]).expect("two names");
        let sub = ds.select_features(&[1]);
        assert_eq!(sub.num_features(), 1);
        assert_eq!(sub.feature_names(), &["peak".to_string()]);
    }

    #[test]
    fn concat_appends_samples() {
        let ds = toy();
        let both = ds.concat(&ds).expect("same width");
        assert_eq!(both.len(), 8);
        assert_eq!(both.meta().len(), 8);
    }

    #[test]
    fn app_ids_are_deduplicated() {
        let ds = toy();
        assert_eq!(ds.app_ids(), vec![AppId(1), AppId(2), AppId(3)]);
        assert_eq!(ds.indices_of_apps(&[AppId(2)]), vec![1, 3]);
    }

    #[test]
    fn feature_name_count_is_validated() {
        let mut ds = toy();
        assert!(ds.set_feature_names(["only one"]).is_err());
    }
}
