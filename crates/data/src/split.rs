//! Train/test splitting and known/unknown partitioning.
//!
//! The paper first buckets every signature by the *application* it was derived
//! from: applications seen during training are "known", held-out applications
//! are "unknown" (zero-day proxies). The known signatures are then split into
//! train and test sets. [`KnownUnknownSplit`] and [`train_test_split`]
//! reproduce that protocol.

use crate::{AppId, DataError, Dataset, Label};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The three-way corpus split used throughout the paper (Fig. 6):
/// train / known-test / unknown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnownUnknownSplit {
    /// Training signatures (known applications only).
    pub train: Dataset,
    /// Held-out test signatures from known applications (in-distribution).
    pub test_known: Dataset,
    /// Signatures from applications never seen in training
    /// (out-of-distribution / zero-day proxies).
    pub unknown: Dataset,
}

impl KnownUnknownSplit {
    /// Total number of samples across the three buckets.
    pub fn total_samples(&self) -> usize {
        self.train.len() + self.test_known.len() + self.unknown.len()
    }
}

/// Splits a dataset into train and test subsets uniformly at random.
///
/// `test_fraction` is the fraction of samples placed in the test set.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] when `test_fraction` is outside
/// `(0, 1)`, or when either side of the split would be empty.
pub fn train_test_split<R: Rng>(
    dataset: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> Result<(Dataset, Dataset), DataError> {
    validate_fraction(test_fraction)?;
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(rng);
    let test_len = ((dataset.len() as f64) * test_fraction).round() as usize;
    split_at(dataset, &indices, test_len)
}

/// Splits a dataset into train and test subsets while preserving the class
/// ratio in both subsets (stratified split).
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] when `test_fraction` is outside
/// `(0, 1)`, or when either side of the split would be empty.
pub fn stratified_split<R: Rng>(
    dataset: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> Result<(Dataset, Dataset), DataError> {
    validate_fraction(test_fraction)?;
    let mut test_indices = Vec::new();
    let mut train_indices = Vec::new();
    for label in Label::all() {
        let mut class_indices: Vec<usize> = (0..dataset.len())
            .filter(|&i| dataset.labels()[i] == label)
            .collect();
        class_indices.shuffle(rng);
        let test_len = ((class_indices.len() as f64) * test_fraction).round() as usize;
        test_indices.extend_from_slice(&class_indices[..test_len]);
        train_indices.extend_from_slice(&class_indices[test_len..]);
    }
    if train_indices.is_empty() || test_indices.is_empty() {
        return Err(DataError::InvalidParameter {
            name: "test_fraction",
            message: format!(
                "split of {} samples at fraction {test_fraction} leaves an empty side",
                dataset.len()
            ),
        });
    }
    train_indices.shuffle(rng);
    test_indices.shuffle(rng);
    Ok((
        dataset.select(&train_indices),
        dataset.select(&test_indices),
    ))
}

/// Partitions a corpus into the paper's train / known-test / unknown buckets.
///
/// Samples whose [`crate::SampleMeta::unknown_app`] flag is set form the
/// unknown bucket. The remaining (known) samples are split into train and
/// test with a stratified split of `test_fraction`.
///
/// # Errors
///
/// Returns an error when the corpus has no metadata, when either the known or
/// the unknown bucket is empty, or when the stratified split fails.
pub fn known_unknown_split<R: Rng>(
    corpus: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> Result<KnownUnknownSplit, DataError> {
    if corpus.meta().len() != corpus.len() {
        return Err(DataError::InvalidParameter {
            name: "corpus",
            message: "known/unknown partition requires per-sample application metadata".into(),
        });
    }
    let unknown_indices: Vec<usize> = corpus
        .meta()
        .iter()
        .enumerate()
        .filter(|(_, m)| m.unknown_app)
        .map(|(i, _)| i)
        .collect();
    let known_indices: Vec<usize> = (0..corpus.len())
        .filter(|i| !unknown_indices.contains(i))
        .collect();
    if unknown_indices.is_empty() {
        return Err(DataError::Empty {
            context: "unknown bucket",
        });
    }
    if known_indices.is_empty() {
        return Err(DataError::Empty {
            context: "known bucket",
        });
    }
    let known = corpus.select(&known_indices);
    let unknown = corpus.select(&unknown_indices);
    let (train, test_known) = stratified_split(&known, test_fraction, rng)?;
    Ok(KnownUnknownSplit {
        train,
        test_known,
        unknown,
    })
}

/// Partitions a corpus by explicitly naming the unknown applications.
///
/// Any sample whose application id is listed in `unknown_apps` lands in the
/// unknown bucket regardless of its metadata flag.
///
/// # Errors
///
/// Same conditions as [`known_unknown_split`].
pub fn split_by_apps<R: Rng>(
    corpus: &Dataset,
    unknown_apps: &[AppId],
    test_fraction: f64,
    rng: &mut R,
) -> Result<KnownUnknownSplit, DataError> {
    if corpus.meta().len() != corpus.len() {
        return Err(DataError::InvalidParameter {
            name: "corpus",
            message: "application split requires per-sample application metadata".into(),
        });
    }
    let unknown_indices = corpus.indices_of_apps(unknown_apps);
    if unknown_indices.is_empty() {
        return Err(DataError::Empty {
            context: "unknown bucket",
        });
    }
    let known_indices: Vec<usize> = (0..corpus.len())
        .filter(|i| !unknown_indices.contains(i))
        .collect();
    if known_indices.is_empty() {
        return Err(DataError::Empty {
            context: "known bucket",
        });
    }
    let known = corpus.select(&known_indices);
    let unknown = corpus.select(&unknown_indices);
    let (train, test_known) = stratified_split(&known, test_fraction, rng)?;
    Ok(KnownUnknownSplit {
        train,
        test_known,
        unknown,
    })
}

/// Draws a bootstrap replicate (sampling with replacement, same size as the
/// input) and also reports the out-of-bag indices.
pub fn bootstrap_indices<R: Rng>(len: usize, rng: &mut R) -> (Vec<usize>, Vec<usize>) {
    // Delegating the draw makes the identical-RNG-consumption guarantee of
    // `bootstrap_draw` hold by construction, not by test.
    let indices = bootstrap_draw(len, rng);
    let mut chosen = vec![false; len];
    for &i in &indices {
        chosen[i] = true;
    }
    let oob = (0..len).filter(|&i| !chosen[i]).collect();
    (indices, oob)
}

/// Draws the same bootstrap replicate as [`bootstrap_indices`] — identical
/// RNG consumption, identical indices — without the out-of-bag bookkeeping.
/// Training hot paths that never look at the out-of-bag set use this.
pub fn bootstrap_draw<R: Rng>(len: usize, rng: &mut R) -> Vec<usize> {
    (0..len).map(|_| rng.gen_range(0..len)).collect()
}

fn validate_fraction(test_fraction: f64) -> Result<(), DataError> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(DataError::InvalidParameter {
            name: "test_fraction",
            message: format!("must lie strictly between 0 and 1, got {test_fraction}"),
        });
    }
    Ok(())
}

fn split_at(
    dataset: &Dataset,
    shuffled: &[usize],
    test_len: usize,
) -> Result<(Dataset, Dataset), DataError> {
    if test_len == 0 || test_len >= dataset.len() {
        return Err(DataError::InvalidParameter {
            name: "test_fraction",
            message: format!(
                "split of {} samples produces a {test_len}-sample test set",
                dataset.len()
            ),
        });
    }
    let test = dataset.select(&shuffled[..test_len]);
    let train = dataset.select(&shuffled[test_len..]);
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, SampleMeta};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let labels: Vec<Label> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Label::Benign
                } else {
                    Label::Malware
                }
            })
            .collect();
        let meta: Vec<SampleMeta> = (0..n)
            .map(|i| {
                let app = AppId((i % 10) as u32);
                if i % 10 >= 8 {
                    SampleMeta::unknown(app)
                } else {
                    SampleMeta::known(app)
                }
            })
            .collect();
        Dataset::with_meta(Matrix::from_rows(&rows).unwrap(), labels, meta).unwrap()
    }

    #[test]
    fn train_test_split_partitions_all_samples() {
        let ds = corpus(100);
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = train_test_split(&ds, 0.25, &mut rng).unwrap();
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 25);
    }

    #[test]
    fn stratified_split_preserves_class_ratio() {
        let ds = corpus(200);
        let mut rng = StdRng::seed_from_u64(3);
        let (train, test) = stratified_split(&ds, 0.3, &mut rng).unwrap();
        let train_frac = train.malware_fraction();
        let test_frac = test.malware_fraction();
        assert!(
            (train_frac - 0.5).abs() < 0.05,
            "train fraction {train_frac}"
        );
        assert!((test_frac - 0.5).abs() < 0.05, "test fraction {test_frac}");
    }

    #[test]
    fn known_unknown_split_respects_app_flags() {
        let ds = corpus(100);
        let mut rng = StdRng::seed_from_u64(11);
        let split = known_unknown_split(&ds, 0.25, &mut rng).unwrap();
        assert_eq!(split.total_samples(), 100);
        assert_eq!(split.unknown.len(), 20);
        assert!(split.unknown.meta().iter().all(|m| m.unknown_app));
        assert!(split.train.meta().iter().all(|m| !m.unknown_app));
    }

    #[test]
    fn split_by_apps_moves_named_apps_to_unknown() {
        let ds = corpus(100);
        let mut rng = StdRng::seed_from_u64(5);
        let split = split_by_apps(&ds, &[AppId(0), AppId(1)], 0.25, &mut rng).unwrap();
        assert_eq!(split.unknown.len(), 20);
        let unknown_apps = split.unknown.app_ids();
        assert_eq!(unknown_apps, vec![AppId(0), AppId(1)]);
    }

    #[test]
    fn bootstrap_covers_about_two_thirds() {
        let mut rng = StdRng::seed_from_u64(42);
        let (indices, oob) = bootstrap_indices(1000, &mut rng);
        assert_eq!(indices.len(), 1000);
        // Expected OOB fraction is (1 - 1/n)^n -> 1/e ~ 0.368.
        let frac = oob.len() as f64 / 1000.0;
        assert!((frac - 0.368).abs() < 0.05, "oob fraction {frac}");
    }

    #[test]
    fn bootstrap_draw_matches_bootstrap_indices() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let (indices, _) = bootstrap_indices(50, &mut a);
        let draw = bootstrap_draw(50, &mut b);
        assert_eq!(indices, draw);
        // Identical RNG consumption: the streams stay in lockstep after.
        assert_eq!(bootstrap_draw(7, &mut a), bootstrap_draw(7, &mut b));
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        let ds = corpus(10);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(train_test_split(&ds, 0.0, &mut rng).is_err());
        assert!(train_test_split(&ds, 1.0, &mut rng).is_err());
        assert!(stratified_split(&ds, -0.2, &mut rng).is_err());
    }
}
