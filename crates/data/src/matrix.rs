use crate::DataError;
use hmd_codec::{CodecError, Json, JsonCodec};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};
use std::sync::OnceLock;

/// Dense row-major matrix of `f64` values.
///
/// [`Matrix`] is the feature container used throughout the workspace. Rows are
/// samples, columns are features. The type deliberately stays small: it offers
/// exactly the operations the hand-rolled learners need (row access, column
/// statistics, transposed products) instead of a full linear-algebra API.
///
/// # Example
///
/// ```
/// use hmd_data::Matrix;
///
/// # fn main() -> Result<(), hmd_data::DataError> {
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    /// Lazily built column-major copy of `data`, serving the fast-fit
    /// training engine. Derived state: built on first [`Matrix::columnar`]
    /// call, reset by clone and by mutable row access, never persisted and
    /// ignored by equality.
    columns: DerivedCache<Vec<f64>>,
    /// Lazily built per-column `total_cmp`-sorted row orders (see
    /// [`Matrix::presorted_rows`]). Same derived-state rules as `columns`.
    sort_orders: DerivedCache<Vec<u32>>,
}

/// Cache cell for state derived from a [`Matrix`]'s data.
///
/// Cloning yields a fresh empty cache (derived state is cheap to rebuild
/// relative to carrying extra full-size copies of the data around), and the
/// cell is ignored by `PartialEq` on [`Matrix`].
#[derive(Debug)]
struct DerivedCache<T>(OnceLock<T>);

impl<T> DerivedCache<T> {
    fn invalidate(&mut self) {
        self.0.take();
    }
}

impl<T> Default for DerivedCache<T> {
    fn default() -> DerivedCache<T> {
        DerivedCache(OnceLock::new())
    }
}

impl<T> Clone for DerivedCache<T> {
    fn clone(&self) -> DerivedCache<T> {
        DerivedCache::default()
    }
}

/// Borrowed column-major view of a [`Matrix`] (see [`Matrix::columnar`]).
///
/// Column `c` is a contiguous `&[f64]` of length [`Matrix::rows`], so sweeps
/// over one feature touch consecutive bytes instead of striding across rows.
#[derive(Debug, Clone, Copy)]
pub struct ColumnarView<'a> {
    data: &'a [f64],
    rows: usize,
}

impl<'a> ColumnarView<'a> {
    /// Column `c` as a contiguous slice, indexed by row.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[inline]
    pub fn col(&self, c: usize) -> &'a [f64] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Number of rows in each column.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// Borrowed per-column sorted row orders of a [`Matrix`] (see
/// [`Matrix::presorted_rows`]).
#[derive(Debug, Clone, Copy)]
pub struct PresortedView<'a> {
    data: &'a [u32],
    rows: usize,
}

impl<'a> PresortedView<'a> {
    /// Row indices of column `c`, ordered so the column's values ascend in
    /// `f64::total_cmp` order with ties broken by ascending row.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[inline]
    pub fn order(&self, c: usize) -> &'a [u32] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }
}

/// Maps an `f64` to a `u64` whose unsigned order equals `f64::total_cmp`
/// order (the standard sign-flip trick), so sort keys compare branchlessly.
#[inline]
fn total_cmp_key(v: f64) -> u64 {
    let bits = v.to_bits();
    bits ^ ((((bits as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// A borrowed, stride-aware view of a contiguous range of matrix rows.
///
/// `RowsView` is the workspace's zero-copy batch currency: every batch-first
/// inference entry point — [`crate::scaler::StandardScaler::transform`], the
/// flat-engine kernels, `Detector::detect_rows` and the serving fleet — takes
/// a view, so callers can score a whole [`Matrix`], any row range of one
/// ([`Matrix::rows_view`]), or a single borrowed signature
/// ([`RowsView::single`]) without copying rows into a fresh matrix first.
///
/// Row `r` starts at `data[r * stride]` and spans `cols` values. Views built
/// from matrices are contiguous (`stride == cols`); the stride field keeps
/// the type open to padded layouts without changing any signature.
///
/// # Example
///
/// ```
/// use hmd_data::{Matrix, RowsView};
///
/// # fn main() -> Result<(), hmd_data::DataError> {
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])?;
/// let mid: RowsView<'_> = m.rows_view(1..3);
/// assert_eq!(mid.rows(), 2);
/// assert_eq!(mid.row(0), &[3.0, 4.0]);
/// let whole: RowsView<'_> = (&m).into();
/// assert_eq!(whole.rows(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RowsView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    /// Distance (in elements) between consecutive row starts; equals `cols`
    /// for contiguous views.
    stride: usize,
}

impl<'a> RowsView<'a> {
    /// A view over one borrowed feature vector — the degenerate 1×d batch.
    /// Single-row scoring paths use this so no per-call matrix is built.
    #[inline]
    pub fn single(row: &'a [f64]) -> RowsView<'a> {
        RowsView {
            data: row,
            rows: 1,
            cols: row.len(),
            stride: row.len(),
        }
    }

    /// Number of rows (samples) in the view.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features) per row.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the view contains no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrows row `r` of the view as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.stride..r * self.stride + self.cols]
    }

    /// Iterator over the view's rows as slices. Unlike a `chunks`-based walk,
    /// the iterator yields exactly [`RowsView::rows`] items even for
    /// zero-width rows, so batch kernels keep the row-count contract without
    /// resize fix-ups.
    #[inline]
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &'a [f64]> + '_ {
        let view = *self;
        (0..self.rows).map(move |r| view.row(r))
    }

    /// A sub-view over rows `start..end` of this view — still zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn rows_view(&self, range: std::ops::Range<usize>) -> RowsView<'a> {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "row range {}..{} out of bounds ({})",
            range.start,
            range.end,
            self.rows
        );
        let rows = range.end - range.start;
        let start = range.start * self.stride;
        let end = if rows == 0 {
            start
        } else {
            (range.end - 1) * self.stride + self.cols
        };
        RowsView {
            data: &self.data[start.min(self.data.len())..end.min(self.data.len()).max(start)],
            rows,
            cols: self.cols,
            stride: self.stride,
        }
    }

    /// The backing buffer as one row-major slice when rows are contiguous
    /// (`stride == cols`), which every view built from a [`Matrix`] is.
    #[inline]
    pub fn as_contiguous(&self) -> Option<&'a [f64]> {
        (self.stride == self.cols).then(|| &self.data[..self.rows * self.cols])
    }

    /// Copies the viewed rows into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        if let Some(data) = self.as_contiguous() {
            return Matrix {
                rows: self.rows,
                cols: self.cols,
                data: data.to_vec(),
                columns: DerivedCache::default(),
                sort_orders: DerivedCache::default(),
            };
        }
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for row in self.iter_rows() {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
            columns: DerivedCache::default(),
            sort_orders: DerivedCache::default(),
        }
    }
}

impl<'a> From<&'a Matrix> for RowsView<'a> {
    fn from(matrix: &'a Matrix) -> RowsView<'a> {
        matrix.view()
    }
}

impl<'a> From<&'a mut Matrix> for RowsView<'a> {
    fn from(matrix: &'a mut Matrix) -> RowsView<'a> {
        matrix.view()
    }
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            columns: DerivedCache::default(),
            sort_orders: DerivedCache::default(),
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
            columns: DerivedCache::default(),
            sort_orders: DerivedCache::default(),
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix, DataError> {
        if data.len() != rows * cols {
            return Err(DataError::DimensionMismatch {
                context: "matrix buffer length",
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data,
            columns: DerivedCache::default(),
            sort_orders: DerivedCache::default(),
        })
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] when `rows` is empty and
    /// [`DataError::RaggedRows`] when rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Matrix, DataError> {
        if rows.is_empty() {
            return Err(DataError::Empty {
                context: "matrix rows",
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(DataError::RaggedRows {
                    expected: cols,
                    found: row.len(),
                    row: i,
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
            columns: DerivedCache::default(),
            sort_orders: DerivedCache::default(),
        })
    }

    /// Number of rows (samples).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        self.columns.invalidate();
        self.sort_orders.invalidate();
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({})",
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Iterator over rows as slices.
    #[inline]
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Borrowed view of every row — the zero-copy currency of the batch
    /// inference entry points. Equivalent to `RowsView::from(self)`.
    #[inline]
    pub fn view(&self) -> RowsView<'_> {
        RowsView {
            data: &self.data,
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
        }
    }

    /// Borrowed view of rows `start..end`, so any row range of an existing
    /// matrix can be scored without copying it into a fresh matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    #[inline]
    pub fn rows_view(&self, range: std::ops::Range<usize>) -> RowsView<'_> {
        self.view().rows_view(range)
    }

    /// Column-major view of the matrix, built lazily on first use and cached.
    ///
    /// The cache is derived state — rebuilt on demand after cloning or
    /// mutation, never persisted — and is shared by every borrower of the
    /// matrix, which is what lets zero-copy bootstrap replicates of one
    /// training set reuse a single transposed copy. Building it costs one
    /// pass over the data; every later call is a pointer read.
    pub fn columnar(&self) -> ColumnarView<'_> {
        let data = self.columns.0.get_or_init(|| {
            let mut buf = vec![0.0; self.data.len()];
            for (r, row) in self.iter_rows().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    buf[c * self.rows + r] = v;
                }
            }
            buf
        });
        ColumnarView {
            data,
            rows: self.rows,
        }
    }

    /// Per-column row orders sorted by `f64::total_cmp` (ties broken by
    /// ascending row index), built lazily on first use and cached.
    ///
    /// This is the presort behind the fast-fit training engine: every tree
    /// grown on this matrix — including every zero-copy bootstrap replicate —
    /// derives its per-feature sorted index arrays from this one shared sort
    /// with a linear gather, so the `O(rows log rows)` sorting cost is paid
    /// once per column per matrix, not once per candidate feature per tree
    /// node. Derived state like [`Matrix::columnar`]: rebuilt on demand
    /// after cloning or mutation, never persisted, ignored by equality.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more than `u32::MAX` rows (the orders are
    /// stored as `u32` indices).
    pub fn presorted_rows(&self) -> PresortedView<'_> {
        let data = self.sort_orders.0.get_or_init(|| {
            assert!(
                u32::try_from(self.rows).is_ok(),
                "presorted row orders require at most u32::MAX rows"
            );
            let cols = self.columnar();
            let mut orders = Vec::with_capacity(self.data.len());
            // (total_cmp key, row) pairs sort with plain integer compares;
            // the row component makes the unstable sort deterministic and
            // reproduces stable-sort tie order.
            let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(self.rows);
            for c in 0..self.cols {
                keyed.clear();
                keyed.extend(
                    cols.col(c)
                        .iter()
                        .enumerate()
                        .map(|(r, &v)| (total_cmp_key(v), r as u32)),
                );
                keyed.sort_unstable();
                orders.extend(keyed.iter().map(|&(_, r)| r));
            }
            orders
        });
        PresortedView {
            data,
            rows: self.rows,
        }
    }

    /// Flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Builds a new matrix containing only the rows selected by `indices`
    /// (indices may repeat, which is exactly what bootstrap resampling needs).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
            columns: DerivedCache::default(),
            sort_orders: DerivedCache::default(),
        }
    }

    /// Builds a new matrix containing only the columns selected by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in indices {
                assert!(
                    c < self.cols,
                    "column index {c} out of bounds ({})",
                    self.cols
                );
                data.push(row[c]);
            }
        }
        Matrix {
            rows: self.rows,
            cols: indices.len(),
            data,
            columns: DerivedCache::default(),
            sort_orders: DerivedCache::default(),
        }
    }

    /// Per-column mean values.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for row in self.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Per-column population standard deviations.
    pub fn column_stds(&self) -> Vec<f64> {
        let means = self.column_means();
        let mut vars = vec![0.0; self.cols];
        if self.rows == 0 {
            return vars;
        }
        for row in self.iter_rows() {
            for ((v, x), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        vars.iter().map(|v| (v / self.rows as f64).sqrt()).collect()
    }

    /// Per-column minimum values.
    pub fn column_mins(&self) -> Vec<f64> {
        let mut mins = vec![f64::INFINITY; self.cols];
        for row in self.iter_rows() {
            for (m, v) in mins.iter_mut().zip(row) {
                if *v < *m {
                    *m = *v;
                }
            }
        }
        mins
    }

    /// Per-column maximum values.
    pub fn column_maxs(&self) -> Vec<f64> {
        let mut maxs = vec![f64::NEG_INFINITY; self.cols];
        for row in self.iter_rows() {
            for (m, v) in maxs.iter_mut().zip(row) {
                if *v > *m {
                    *m = *v;
                }
            }
        }
        maxs
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when the inner dimensions do
    /// not agree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, DataError> {
        if self.cols != other.rows {
            return Err(DataError::DimensionMismatch {
                context: "matrix product inner dimension",
                expected: self.cols,
                found: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, DataError> {
        if v.len() != self.cols {
            return Err(DataError::DimensionMismatch {
                context: "matrix-vector product",
                expected: self.cols,
                found: v.len(),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Appends another matrix's rows below this one.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] when the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, DataError> {
        if self.cols != other.cols {
            return Err(DataError::DimensionMismatch {
                context: "vertical stack column count",
                expected: self.cols,
                found: other.cols,
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
            columns: DerivedCache::default(),
            sort_orders: DerivedCache::default(),
        })
    }
}

impl PartialEq for Matrix {
    /// Shape and element equality; the lazily built column cache is derived
    /// state and deliberately ignored.
    fn eq(&self, other: &Matrix) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl JsonCodec for Matrix {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("rows", self.rows.to_json()),
            ("cols", self.cols.to_json()),
            ("data", self.data.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<Matrix, CodecError> {
        let rows = usize::from_json(json.get("rows")?)?;
        let cols = usize::from_json(json.get("cols")?)?;
        let data = Vec::<f64>::from_json(json.get("data")?)?;
        Matrix::from_vec(rows, cols, data).map_err(|err| CodecError::new(format!("matrix: {err}")))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.columns.invalidate();
        self.sort_orders.invalidate();
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for row in self.iter_rows().take(8) {
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:9.4}")).collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).expect("valid rows")
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, DataError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn shape_and_indexing() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
    }

    #[test]
    fn column_statistics() {
        let m = sample();
        assert_eq!(m.column_means(), vec![2.5, 3.5, 4.5]);
        assert_eq!(m.column_mins(), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.column_maxs(), vec![4.0, 5.0, 6.0]);
        let stds = m.column_stds();
        for s in stds {
            assert!((s - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn select_rows_allows_repeats() {
        let m = sample();
        let picked = m.select_rows(&[1, 1, 0]);
        assert_eq!(picked.rows(), 3);
        assert_eq!(picked.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(picked.row(2), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn select_columns_projects() {
        let m = sample();
        let picked = m.select_columns(&[2, 0]);
        assert_eq!(picked.shape(), (2, 2));
        assert_eq!(picked.row(0), &[3.0, 1.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample(); // 2x3
        let b = a.transpose(); // 3x2
        let prod = a.matmul(&b).expect("conformant");
        assert_eq!(prod.shape(), (2, 2));
        assert_eq!(prod[(0, 0)], 14.0);
        assert_eq!(prod[(0, 1)], 32.0);
        assert_eq!(prod[(1, 1)], 77.0);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = sample();
        let v = m.matvec(&[1.0, 0.0, -1.0]).expect("conformant");
        assert_eq!(v, vec![-2.0, -2.0]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let m = sample();
        let stacked = m.vstack(&m).expect("same width");
        assert_eq!(stacked.shape(), (4, 3));
        assert_eq!(stacked.row(3), m.row(1));
    }

    #[test]
    fn display_is_not_empty() {
        let text = sample().to_string();
        assert!(text.contains("Matrix 2x3"));
    }

    #[test]
    fn columnar_view_matches_column_copies() {
        let m = sample();
        let view = m.columnar();
        assert_eq!(view.rows(), 2);
        for c in 0..m.cols() {
            assert_eq!(view.col(c), m.column(c).as_slice());
        }
        // A second call serves the cached buffer and agrees with the first.
        let again = m.columnar();
        assert_eq!(again.col(0), view.col(0));
    }

    #[test]
    fn columnar_cache_is_invalidated_by_mutation() {
        let mut m = sample();
        assert_eq!(m.columnar().col(0), &[1.0, 4.0]);
        m.row_mut(0)[0] = 9.0;
        assert_eq!(m.columnar().col(0), &[9.0, 4.0]);
        m[(1, 0)] = -3.0;
        assert_eq!(m.columnar().col(0), &[9.0, -3.0]);
    }

    #[test]
    fn columnar_cache_is_ignored_by_equality_and_reset_by_clone() {
        let a = sample();
        let b = sample();
        let _ = a.columnar();
        assert_eq!(a, b, "cache state must not affect equality");
        let c = a.clone();
        assert_eq!(c.columnar().col(2), &[3.0, 6.0]);
    }

    #[test]
    fn presorted_rows_sort_each_column_with_stable_ties() {
        let m = Matrix::from_rows(&[
            vec![3.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
            vec![1.0, 0.0],
        ])
        .unwrap();
        let view = m.presorted_rows();
        // Column 0: values [3,1,2,1] -> rows 1 and 3 tie at 1.0, ascending
        // row order breaks the tie.
        assert_eq!(view.order(0), &[1, 3, 2, 0]);
        // Column 1: three-way tie at 1.0 keeps ascending rows.
        assert_eq!(view.order(1), &[3, 0, 1, 2]);
    }

    #[test]
    fn presorted_rows_order_special_values_like_total_cmp() {
        let m = Matrix::from_rows(&[
            vec![0.0],
            vec![f64::NEG_INFINITY],
            vec![-0.0],
            vec![f64::INFINITY],
            vec![-1.5],
        ])
        .unwrap();
        // total_cmp: -inf < -1.5 < -0.0 < +0.0 < +inf.
        assert_eq!(m.presorted_rows().order(0), &[1, 4, 2, 0, 3]);
    }

    #[test]
    fn presorted_rows_cache_is_invalidated_by_mutation() {
        let mut m = Matrix::from_rows(&[vec![2.0], vec![1.0]]).unwrap();
        assert_eq!(m.presorted_rows().order(0), &[1, 0]);
        m.row_mut(1)[0] = 5.0;
        assert_eq!(m.presorted_rows().order(0), &[0, 1]);
    }

    #[test]
    fn rows_view_borrows_ranges_without_copying() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let whole = m.view();
        assert_eq!(whole.shape(), (3, 2));
        assert!(!whole.is_empty());
        assert_eq!(whole.row(2), &[5.0, 6.0]);
        assert_eq!(whole.as_contiguous(), Some(m.as_slice()));

        let mid = m.rows_view(1..3);
        assert_eq!(mid.rows(), 2);
        assert_eq!(mid.cols(), 2);
        assert_eq!(mid.row(0), m.row(1));
        let collected: Vec<&[f64]> = mid.iter_rows().collect();
        assert_eq!(collected, vec![m.row(1), m.row(2)]);

        // Sub-views of sub-views still index into the original buffer.
        let last = mid.rows_view(1..2);
        assert_eq!(last.row(0), m.row(2));
        assert_eq!(last.to_matrix().row(0), m.row(2));
    }

    #[test]
    fn rows_view_single_wraps_a_borrowed_signature() {
        let signature = [0.25, 0.5, 0.75];
        let view = RowsView::single(&signature);
        assert_eq!(view.shape(), (1, 3));
        assert_eq!(view.row(0), &signature);
        assert_eq!(view.iter_rows().len(), 1);
        assert_eq!(
            view.to_matrix(),
            Matrix::from_rows(&[signature.to_vec()]).unwrap()
        );
    }

    #[test]
    fn rows_view_handles_empty_ranges_and_zero_width_rows() {
        let m = sample();
        let none = m.rows_view(1..1);
        assert!(none.is_empty());
        assert_eq!(none.iter_rows().count(), 0);
        assert_eq!(none.to_matrix().shape(), (0, 3));

        let wide = Matrix::zeros(4, 0);
        let view = wide.view();
        assert_eq!(view.rows(), 4);
        assert_eq!(view.iter_rows().count(), 4, "zero-width rows still count");
        assert!(view.iter_rows().all(|row| row.is_empty()));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rows_view_rejects_out_of_range() {
        let m = sample();
        let _ = m.rows_view(1..5);
    }

    #[test]
    fn columnar_view_handles_degenerate_shapes() {
        let empty = Matrix::zeros(0, 4);
        assert_eq!(empty.columnar().col(3), &[] as &[f64]);
        let single = Matrix::from_rows(&[vec![7.0]]).unwrap();
        assert_eq!(single.columnar().col(0), &[7.0]);
    }
}
