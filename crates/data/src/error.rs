use std::error::Error;
use std::fmt;

/// Error type for dataset construction and preprocessing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// A matrix was constructed from rows of unequal length.
    RaggedRows {
        /// Expected number of columns (from the first row).
        expected: usize,
        /// Offending row length.
        found: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// A matrix or dataset dimension did not match what the operation expects.
    DimensionMismatch {
        /// Human readable description of the expectation.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        found: usize,
    },
    /// The operation requires a non-empty dataset or matrix.
    Empty {
        /// Human readable description of what was empty.
        context: &'static str,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Explanation of the valid range.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::RaggedRows {
                expected,
                found,
                row,
            } => write!(
                f,
                "row {row} has {found} columns but {expected} were expected"
            ),
            DataError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            DataError::Empty { context } => write!(f, "{context} must not be empty"),
            DataError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DataError::RaggedRows {
            expected: 3,
            found: 2,
            row: 5,
        };
        let text = err.to_string();
        assert!(text.contains("row 5"));
        assert!(text.contains('3'));
        assert!(text.contains('2'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
