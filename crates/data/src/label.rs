use hmd_codec::{CodecError, Json, JsonCodec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary classification label used by every hardware malware detector in the
/// workspace.
///
/// The numeric encoding follows the convention of the paper's datasets:
/// benign = 0, malware = 1 (malware is the "positive" class for
/// precision/recall/F1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Label {
    /// A benign workload.
    Benign,
    /// A malicious workload.
    Malware,
}

impl Label {
    /// Numeric class index (`0` for benign, `1` for malware).
    ///
    /// ```
    /// use hmd_data::Label;
    /// assert_eq!(Label::Malware.index(), 1);
    /// ```
    pub fn index(self) -> usize {
        match self {
            Label::Benign => 0,
            Label::Malware => 1,
        }
    }

    /// Signed encoding (`-1.0` for benign, `+1.0` for malware) used by
    /// margin-based learners such as the linear SVM.
    pub fn signed(self) -> f64 {
        match self {
            Label::Benign => -1.0,
            Label::Malware => 1.0,
        }
    }

    /// Builds a label from a numeric class index.
    ///
    /// Any non-zero index maps to [`Label::Malware`], mirroring the paper's
    /// 0/1 encoding.
    pub fn from_index(index: usize) -> Label {
        if index == 0 {
            Label::Benign
        } else {
            Label::Malware
        }
    }

    /// `true` when the label is [`Label::Malware`].
    pub fn is_malware(self) -> bool {
        matches!(self, Label::Malware)
    }

    /// All label values, in class-index order.
    pub fn all() -> [Label; 2] {
        [Label::Benign, Label::Malware]
    }

    /// Number of classes in the binary task.
    pub const NUM_CLASSES: usize = 2;
}

impl JsonCodec for Label {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Label::Benign => "benign",
                Label::Malware => "malware",
            }
            .to_string(),
        )
    }

    fn from_json(json: &Json) -> Result<Label, CodecError> {
        match json.as_str()? {
            "benign" => Ok(Label::Benign),
            "malware" => Ok(Label::Malware),
            other => Err(CodecError::new(format!("unknown label `{other}`"))),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Benign => write!(f, "benign"),
            Label::Malware => write!(f, "malware"),
        }
    }
}

impl From<bool> for Label {
    /// `true` maps to malware, `false` to benign.
    fn from(is_malware: bool) -> Self {
        if is_malware {
            Label::Malware
        } else {
            Label::Benign
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for label in Label::all() {
            assert_eq!(Label::from_index(label.index()), label);
        }
    }

    #[test]
    fn signed_encoding_matches_class() {
        assert_eq!(Label::Benign.signed(), -1.0);
        assert_eq!(Label::Malware.signed(), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Label::Benign.to_string(), "benign");
        assert_eq!(Label::Malware.to_string(), "malware");
    }

    #[test]
    fn from_bool() {
        assert_eq!(Label::from(true), Label::Malware);
        assert_eq!(Label::from(false), Label::Benign);
    }

    #[test]
    fn nonzero_index_is_malware() {
        assert_eq!(Label::from_index(7), Label::Malware);
    }
}
