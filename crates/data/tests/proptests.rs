//! Randomised property tests for the data substrate.
//!
//! The offline toolchain has no `proptest`, so these run the same properties
//! over a fixed number of seeded random cases: deterministic, and the failing
//! case is identified by its iteration index.

use hmd_data::scaler::{MinMaxScaler, StandardScaler};
use hmd_data::split::{bootstrap_indices, stratified_split, train_test_split};
use hmd_data::{Dataset, Label, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn random_matrix(rng: &mut StdRng, max_rows: usize, max_cols: usize) -> Matrix {
    let rows = rng.gen_range(2..=max_rows);
    let cols = rng.gen_range(1..=max_cols);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1e3..1e3)).collect();
    Matrix::from_vec(rows, cols, data).expect("sized buffer")
}

fn random_dataset(rng: &mut StdRng, max_rows: usize, max_cols: usize) -> Dataset {
    let m = random_matrix(rng, max_rows, max_cols);
    let labels: Vec<Label> = (0..m.rows())
        .map(|_| Label::from(rng.gen_bool(0.5)))
        .collect();
    Dataset::new(m, labels).expect("consistent dataset")
}

#[test]
fn transpose_is_involution() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let m = random_matrix(&mut rng, 12, 6);
        assert_eq!(m.transpose().transpose(), m, "case {case}");
    }
}

#[test]
fn column_mins_never_exceed_maxs() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let m = random_matrix(&mut rng, 12, 6);
        for (lo, hi) in m.column_mins().iter().zip(&m.column_maxs()) {
            assert!(lo <= hi, "case {case}");
        }
    }
}

#[test]
fn standard_scaler_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let m = random_matrix(&mut rng, 12, 6);
        let scaler = StandardScaler::fit(&m);
        let back = scaler
            .inverse_transform(&scaler.transform(&m).unwrap())
            .unwrap();
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert!((a - b).abs() < 1e-6, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn minmax_output_is_bounded() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + case);
        let m = random_matrix(&mut rng, 12, 6);
        let scaler = MinMaxScaler::fit(&m);
        let out = scaler.transform(&m).unwrap();
        for v in out.as_slice() {
            assert!((-1e-9..=1.0 + 1e-9).contains(v), "case {case}: {v}");
        }
    }
}

#[test]
fn train_test_split_is_a_partition() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + case);
        let ds = random_dataset(&mut rng, 40, 4);
        if let Ok((train, test)) = train_test_split(&ds, 0.3, &mut rng) {
            assert_eq!(train.len() + test.len(), ds.len(), "case {case}");
            assert_eq!(train.num_features(), ds.num_features(), "case {case}");
        }
    }
}

#[test]
fn stratified_split_preserves_totals_per_class() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + case);
        let ds = random_dataset(&mut rng, 60, 3);
        if let Ok((train, test)) = stratified_split(&ds, 0.25, &mut rng) {
            let total = ds.class_counts();
            let got = [
                train.class_counts()[0] + test.class_counts()[0],
                train.class_counts()[1] + test.class_counts()[1],
            ];
            assert_eq!(total, got, "case {case}");
        }
    }
}

#[test]
fn bootstrap_indices_stay_in_range() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6000 + case);
        let len = rng.gen_range(1..500usize);
        let (indices, oob) = bootstrap_indices(len, &mut rng);
        assert_eq!(indices.len(), len, "case {case}");
        assert!(indices.iter().all(|&i| i < len), "case {case}");
        assert!(oob.iter().all(|&i| i < len), "case {case}");
        // every index is either drawn or out-of-bag
        for i in 0..len {
            assert!(
                indices.contains(&i) || oob.contains(&i),
                "case {case}: index {i} lost"
            );
        }
    }
}

#[test]
fn select_preserves_feature_width() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7000 + case);
        let ds = random_dataset(&mut rng, 30, 5);
        let picked = ds.select(&[0, ds.len() - 1, 0]);
        assert_eq!(picked.len(), 3, "case {case}");
        assert_eq!(picked.num_features(), ds.num_features(), "case {case}");
    }
}
