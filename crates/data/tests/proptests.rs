//! Property-based tests for the data substrate.

use hmd_data::scaler::{MinMaxScaler, StandardScaler};
use hmd_data::split::{bootstrap_indices, stratified_split, train_test_split};
use hmd_data::{Dataset, Label, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_rows, 1..=max_cols).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-1e3f64..1e3, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized buffer"))
    })
}

fn dataset_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Dataset> {
    matrix_strategy(max_rows, max_cols).prop_flat_map(|m| {
        let rows = m.rows();
        proptest::collection::vec(proptest::bool::ANY, rows).prop_map(move |flags| {
            let labels: Vec<Label> = flags.iter().copied().map(Label::from).collect();
            Dataset::new(m.clone(), labels).expect("consistent dataset")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in matrix_strategy(12, 6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn column_mins_never_exceed_maxs(m in matrix_strategy(12, 6)) {
        let mins = m.column_mins();
        let maxs = m.column_maxs();
        for (lo, hi) in mins.iter().zip(&maxs) {
            prop_assert!(lo <= hi);
        }
    }

    #[test]
    fn standard_scaler_round_trip(m in matrix_strategy(12, 6)) {
        let scaler = StandardScaler::fit(&m);
        let back = scaler.inverse_transform(&scaler.transform(&m).unwrap()).unwrap();
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn minmax_output_is_bounded(m in matrix_strategy(12, 6)) {
        let scaler = MinMaxScaler::fit(&m);
        let out = scaler.transform(&m).unwrap();
        for v in out.as_slice() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(v));
        }
    }

    #[test]
    fn train_test_split_is_a_partition(ds in dataset_strategy(40, 4), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok((train, test)) = train_test_split(&ds, 0.3, &mut rng) {
            prop_assert_eq!(train.len() + test.len(), ds.len());
            prop_assert_eq!(train.num_features(), ds.num_features());
        }
    }

    #[test]
    fn stratified_split_preserves_totals_per_class(ds in dataset_strategy(60, 3), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok((train, test)) = stratified_split(&ds, 0.25, &mut rng) {
            let total = ds.class_counts();
            let got = [
                train.class_counts()[0] + test.class_counts()[0],
                train.class_counts()[1] + test.class_counts()[1],
            ];
            prop_assert_eq!(total, got);
        }
    }

    #[test]
    fn bootstrap_indices_stay_in_range(len in 1usize..500, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (indices, oob) = bootstrap_indices(len, &mut rng);
        prop_assert_eq!(indices.len(), len);
        prop_assert!(indices.iter().all(|&i| i < len));
        prop_assert!(oob.iter().all(|&i| i < len));
        // every index is either drawn or out-of-bag
        for i in 0..len {
            prop_assert!(indices.contains(&i) || oob.contains(&i));
        }
    }

    #[test]
    fn select_preserves_feature_width(ds in dataset_strategy(30, 5)) {
        let picked = ds.select(&[0, ds.len() - 1, 0]);
        prop_assert_eq!(picked.len(), 3);
        prop_assert_eq!(picked.num_features(), ds.num_features());
    }
}
