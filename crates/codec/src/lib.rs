//! Dependency-free JSON codec used to persist fitted HMD pipelines.
//!
//! The build environment has no crates.io access, so model persistence
//! (`hmd_core::detector`'s `save`/`load`) cannot lean on `serde_json` or
//! `bincode`. This crate provides the substitute: a small [`Json`] value
//! type, a strict parser, a writer, and the [`JsonCodec`] trait that fitted
//! models across the workspace implement field by field.
//!
//! Exactness matters more than prettiness here: a saved detector must
//! reproduce **bit-identical** reports after a load. Finite `f64` values are
//! written with Rust's shortest round-trip formatting (guaranteed to parse
//! back to the same bits) and non-finite values are encoded as tagged
//! strings, so every `f64` survives the trip exactly.
//!
//! # Example
//!
//! ```
//! use hmd_codec::{Json, JsonCodec};
//!
//! let value = Json::Object(vec![
//!     ("threshold".to_string(), 0.4f64.to_json()),
//!     ("votes".to_string(), vec![3u64, 22].to_json()),
//! ]);
//! let text = value.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(value, back);
//! assert_eq!(f64::from_json(back.get("threshold").unwrap()).unwrap(), 0.4);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod frame;

use std::fmt;

/// Error produced by parsing or by typed decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable description including the failing context.
    pub message: String,
}

impl CodecError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> CodecError {
        CodecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// A JSON value.
///
/// Objects preserve insertion order (persisted models have a handful of
/// fields; a sorted map would buy nothing).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that parsed as an integer.
    Int(i64),
    /// A number with a fractional part or exponent, or too large for `i64`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Returns an error when `self` is not an object or the key is absent.
    pub fn get(&self, key: &str) -> Result<&Json, CodecError> {
        match self {
            Json::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| CodecError::new(format!("missing field `{key}`"))),
            other => Err(CodecError::new(format!(
                "expected object with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "int",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// The value as an `f64` (accepts both number encodings plus the tagged
    /// non-finite strings `"NaN"`, `"inf"`, `"-inf"`).
    ///
    /// # Errors
    ///
    /// Returns an error for non-numeric values.
    pub fn as_f64(&self) -> Result<f64, CodecError> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            Json::Str(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                _ => Err(CodecError::new(format!(
                    "expected number, found string {s:?}"
                ))),
            },
            other => Err(CodecError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an `i64`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-integer values.
    pub fn as_i64(&self) -> Result<i64, CodecError> {
        match self {
            Json::Int(i) => Ok(*i),
            other => Err(CodecError::new(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-integers and negative integers.
    pub fn as_usize(&self) -> Result<usize, CodecError> {
        let i = self.as_i64()?;
        usize::try_from(i).map_err(|_| CodecError::new(format!("expected usize, found {i}")))
    }

    /// The value as a `bool`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-boolean values.
    pub fn as_bool(&self) -> Result<bool, CodecError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(CodecError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns an error for non-string values.
    pub fn as_str(&self) -> Result<&str, CodecError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(CodecError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns an error for non-array values.
    pub fn as_array(&self) -> Result<&[Json], CodecError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(CodecError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first syntax problem, with its byte
    /// offset.
    pub fn parse(text: &str) -> Result<Json, CodecError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Float(f) => write_f64(*f, out),
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_f64(value: f64, out: &mut String) {
    if value.is_nan() {
        out.push_str("\"NaN\"");
    } else if value == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if value == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        // Rust's float Display is the shortest representation that parses
        // back to the identical bits — exactly what persistence needs.
        let text = value.to_string();
        out.push_str(&text);
        if !text.contains(['.', 'e', 'E']) {
            // Keep the token recognisable as a float ("2" → "2.0") so the
            // Int/Float distinction survives a round trip.
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The parser recurses per
/// nesting level, so this bounds stack use; persisted detector documents
/// nest no more than a handful of levels, while a crafted or corrupted
/// document of thousands of `[`s would otherwise overflow the stack instead
/// of returning an error.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> CodecError {
        CodecError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), CodecError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, CodecError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.error(&format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, CodecError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{literal}`")))
        }
    }

    fn enter(&mut self) -> Result<(), CodecError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("document nests deeper than the supported limit"));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Json, CodecError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, CodecError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, CodecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for model files;
                            // reject them instead of mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(&format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, CodecError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error(&format!("invalid number `{text}`")))
    }
}

/// Types that can persist themselves as JSON and be restored exactly.
pub trait JsonCodec: Sized {
    /// Encodes the value.
    fn to_json(&self) -> Json;

    /// Decodes a value previously produced by [`JsonCodec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] describing the first structural or type
    /// mismatch.
    fn from_json(json: &Json) -> Result<Self, CodecError>;
}

impl JsonCodec for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }

    fn from_json(json: &Json) -> Result<f64, CodecError> {
        json.as_f64()
    }
}

impl JsonCodec for u64 {
    fn to_json(&self) -> Json {
        // Seeds can exceed i64::MAX; persist those as decimal strings.
        match i64::try_from(*self) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Str(self.to_string()),
        }
    }

    fn from_json(json: &Json) -> Result<u64, CodecError> {
        match json {
            Json::Int(i) => {
                u64::try_from(*i).map_err(|_| CodecError::new(format!("expected u64, found {i}")))
            }
            Json::Str(s) => s
                .parse::<u64>()
                .map_err(|_| CodecError::new(format!("expected u64, found {s:?}"))),
            other => Err(CodecError::new(format!(
                "expected u64, found {}",
                other.kind()
            ))),
        }
    }
}

impl JsonCodec for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }

    fn from_json(json: &Json) -> Result<usize, CodecError> {
        json.as_usize()
    }
}

impl JsonCodec for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }

    fn from_json(json: &Json) -> Result<bool, CodecError> {
        json.as_bool()
    }
}

impl JsonCodec for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }

    fn from_json(json: &Json) -> Result<String, CodecError> {
        Ok(json.as_str()?.to_string())
    }
}

impl<T: JsonCodec> JsonCodec for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(JsonCodec::to_json).collect())
    }

    fn from_json(json: &Json) -> Result<Vec<T>, CodecError> {
        json.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: JsonCodec> JsonCodec for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }

    fn from_json(json: &Json) -> Result<Option<T>, CodecError> {
        match json {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#" { "a": [1, -2.5, true, null, "x\ny"], "b": { "c": 1e-3 } } "#;
        let value = Json::parse(doc).unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_f64().unwrap(),
            1e-3
        );
    }

    #[test]
    fn deeply_nested_documents_error_instead_of_overflowing() {
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nests deeper"), "{err}");
        // Legitimate nesting well under the limit still parses.
        let nested = format!("{}1{}", "[".repeat(50), "]".repeat(50));
        assert!(Json::parse(&nested).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{]",
        ] {
            assert!(Json::parse(bad).is_err(), "parsed {bad:?}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let values = [
            0.1,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            1e-300,
            std::f64::consts::PI,
            -0.0,
            2.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for &v in &values {
            let text = v.to_json().to_string();
            let back = f64::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v} → {text}");
        }
    }

    #[test]
    fn integers_and_strings_round_trip() {
        let seed: u64 = u64::MAX - 3;
        let text = seed.to_json().to_string();
        assert_eq!(u64::from_json(&Json::parse(&text).unwrap()).unwrap(), seed);

        let s = "quotes \" backslash \\ newline \n tab \t unicode ☂".to_string();
        let text = s.to_json().to_string();
        assert_eq!(String::from_json(&Json::parse(&text).unwrap()).unwrap(), s);
    }

    #[test]
    fn options_and_vectors_compose() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(-2.25)];
        let text = v.to_json().to_string();
        let back: Vec<Option<f64>> = Vec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn typed_errors_name_the_problem() {
        let doc = Json::parse(r#"{"a": 1}"#).unwrap();
        assert!(doc.get("missing").unwrap_err().message.contains("missing"));
        assert!(doc.get("a").unwrap().as_str().is_err());
        assert!(Json::Int(-1).as_usize().is_err());
    }
}
