//! Length-prefixed framing for JSON documents on a byte stream.
//!
//! The serving layer's loopback wire protocol (see `PROTOCOL.md` at the
//! repository root) exchanges [`Json`](crate::Json) documents over TCP. A
//! byte stream has no message boundaries, so every document travels inside
//! a **frame**: a fixed 8-byte header followed by the document's UTF-8
//! bytes. This module owns the header layout and nothing else — what the
//! `kind` byte means, which versions are speakable, and how large a payload
//! a peer will accept are *protocol* decisions that belong to the caller
//! (`hmd_serve::net`), keeping the codec reusable for any framed-document
//! transport.
//!
//! ```text
//! offset  size  field
//! 0       2     magic  0x48 0x4D ("HM") — resync/garbage detection
//! 2       1     version               — protocol version of the sender
//! 3       1     kind                  — opaque message discriminator
//! 4       4     length  u32 big-endian — payload byte count
//! 8       len   payload               — UTF-8 JSON document
//! ```
//!
//! The header is fixed-size on purpose: a reader always knows it needs
//! exactly [`HEADER_LEN`] bytes before it can size the payload read, so a
//! bounded reader never over-buffers. Header parsing validates the magic
//! only — version and length policy are enforced by the layer that knows
//! the limits.

use crate::CodecError;

/// The two magic bytes opening every frame: `"HM"`.
///
/// A reader that sees anything else at a frame boundary is desynchronised
/// (or talking to a non-protocol peer) and must drop the connection — with
/// no self-synchronising delimiter in the stream there is no safe resync.
pub const MAGIC: [u8; 2] = *b"HM";

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 8;

/// The parsed fixed-size header of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version byte of the sending peer.
    pub version: u8,
    /// Opaque message discriminator; meaning belongs to the protocol layer.
    pub kind: u8,
    /// Payload length in bytes. The codec places no policy on it — callers
    /// enforce their own maximum before allocating.
    pub len: u32,
}

impl FrameHeader {
    /// Serialises the header into its 8-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let len = self.len.to_be_bytes();
        [
            MAGIC[0],
            MAGIC[1],
            self.version,
            self.kind,
            len[0],
            len[1],
            len[2],
            len[3],
        ]
    }

    /// Parses an 8-byte wire header, validating the magic.
    ///
    /// # Errors
    ///
    /// [`CodecError`] if the first two bytes are not [`MAGIC`] — the caller
    /// is reading garbage or mid-stream and must close the connection.
    pub fn parse(bytes: &[u8; HEADER_LEN]) -> Result<FrameHeader, CodecError> {
        if bytes[0] != MAGIC[0] || bytes[1] != MAGIC[1] {
            return Err(CodecError::new(format!(
                "bad frame magic {:#04x} {:#04x} (expected {:#04x} {:#04x}): \
                 stream is desynchronised or the peer does not speak the protocol",
                bytes[0], bytes[1], MAGIC[0], MAGIC[1]
            )));
        }
        Ok(FrameHeader {
            version: bytes[2],
            kind: bytes[3],
            len: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        })
    }
}

/// Encodes one complete frame: header plus `payload` bytes.
///
/// # Errors
///
/// [`CodecError`] if the payload does not fit the header's `u32` length
/// field.
pub fn encode_frame(version: u8, kind: u8, payload: &str) -> Result<Vec<u8>, CodecError> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        CodecError::new(format!(
            "frame payload of {} bytes exceeds the u32 length field",
            payload.len()
        ))
    })?;
    let header = FrameHeader { version, kind, len };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(payload.as_bytes());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_through_wire_form() {
        let header = FrameHeader {
            version: 3,
            kind: 0x81,
            len: 0xDEAD_BEEF,
        };
        let wire = header.encode();
        assert_eq!(&wire[..2], &MAGIC);
        assert_eq!(FrameHeader::parse(&wire).unwrap(), header);
    }

    #[test]
    fn encode_frame_prefixes_the_payload() {
        let frame = encode_frame(1, 7, "{\"ok\":true}").unwrap();
        assert_eq!(frame.len(), HEADER_LEN + 11);
        let mut head = [0u8; HEADER_LEN];
        head.copy_from_slice(&frame[..HEADER_LEN]);
        let header = FrameHeader::parse(&head).unwrap();
        assert_eq!((header.version, header.kind, header.len), (1, 7, 11));
        assert_eq!(&frame[HEADER_LEN..], b"{\"ok\":true}");
    }

    #[test]
    fn bad_magic_is_rejected_with_context() {
        let mut wire = FrameHeader {
            version: 1,
            kind: 0,
            len: 0,
        }
        .encode();
        wire[0] = b'X';
        let err = FrameHeader::parse(&wire).unwrap_err();
        assert!(err.message.contains("bad frame magic"), "{err}");
    }

    #[test]
    fn zero_length_payloads_are_valid_frames() {
        let frame = encode_frame(1, 6, "").unwrap();
        assert_eq!(frame.len(), HEADER_LEN);
    }
}
