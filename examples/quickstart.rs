//! Quickstart: train a trusted (uncertainty-aware) HMD on simulated DVFS
//! signatures and compare it with the conventional untrusted detector — both
//! served through the unified `Detector` API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hmd::core::detector::{load, save};
use hmd::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Simulate a DVFS signature corpus and split it the way the paper does:
    //    train / known-test / unknown (zero-day proxy applications).
    let split = DvfsCorpusBuilder::new()
        .with_samples_per_app(20)
        .with_trace_len(384)
        .build_split(42)?;
    println!(
        "corpus: {} train, {} known-test, {} unknown signatures ({} features)",
        split.train.len(),
        split.test_known.len(),
        split.unknown.len(),
        split.train.num_features()
    );

    // 2. Describe both pipelines as detector configs sharing one backend —
    //    a bagging ensemble of decision trees behind a standard-scaling
    //    front end versus a single black-box classifier — and compile each
    //    description into a `Box<dyn Detector>`.
    let backend = DetectorBackend::decision_tree();
    let trusted = DetectorConfig::trusted(backend.clone())
        .with_num_estimators(25)
        .with_entropy_threshold(0.4)
        .fit(&split.train, 7)?;
    let untrusted = DetectorConfig::untrusted(backend).fit(&split.train, 7)?;

    // 3. On the known test set the two agree and the accuracy is high. The
    //    batch path scores the whole test matrix in one call.
    for detector in [&trusted, &untrusted] {
        let reports = detector.detect_batch(split.test_known.features())?;
        let labels: Vec<Label> = reports.iter().map(|r| r.prediction.label).collect();
        println!(
            "known test F1 ({}): {:.3}",
            detector.name(),
            f1_score(split.test_known.labels(), &labels)
        );
    }

    // 4. On *unknown* applications the untrusted HMD silently guesses, while
    //    the trusted HMD reports high uncertainty and escalates. Views make
    //    scoring a sub-range of an existing matrix zero-copy.
    let unknown = split.unknown.features();
    let reports = trusted.detect_batch(unknown)?;
    let escalated = reports
        .iter()
        .filter(|r| r.decision.is_escalation())
        .count();
    println!(
        "unknown (zero-day proxy) signatures escalated by the trusted HMD: {}/{} ({:.1}%)",
        escalated,
        split.unknown.len(),
        100.0 * escalated as f64 / split.unknown.len() as f64
    );
    println!("the untrusted baseline emitted a (blind) verdict for every one of them");
    let front_half = trusted.detect_batch(unknown.rows_view(0..unknown.rows() / 2))?;
    assert_eq!(front_half, reports[..unknown.rows() / 2]);

    // 5. Deployment surface: both pipelines serve behind a DetectorFleet as
    //    named, versioned endpoints with per-endpoint statistics. Results
    //    come back in a version-stamped envelope and are bit-identical to
    //    the direct calls above.
    let fleet = DetectorFleet::new();
    let document = save(trusted.as_ref())?; // for the sharded step below
    fleet.deploy("trusted", trusted);
    fleet.deploy("untrusted", untrusted);
    let served = fleet.score_batch("trusted", unknown)?;
    assert!(served
        .iter()
        .zip(&reports)
        .all(|(s, d)| s.version == 1 && &s.report == d));
    println!(
        "fleet endpoints {:?}: trusted endpoint saw {} windows, {:.1}% escalated",
        fleet.endpoints(),
        fleet.stats("trusted")?.windows,
        100.0 * fleet.stats("trusted")?.escalation_rate()
    );

    // 6. Scale out: restore the same trusted model from its saved document
    //    and replicate it across 3 shards with round-robin routing.
    //    Replicas are bit-identical codec clones, so the reports still
    //    match the direct path — only the replica attribution varies — and
    //    the per-replica statistics merge back into one endpoint-wide view.
    let sharded = ShardedFleet::new(3);
    sharded.deploy("trusted", load(&document)?)?;
    let mut tickets = Vec::new();
    for row in 0..unknown.rows() {
        tickets.push(sharded.score("trusted", unknown.row(row))?);
    }
    sharded.flush("trusted")?;
    let mut replicas_used = [0usize; 3];
    for (ticket, direct) in tickets.into_iter().zip(&reports) {
        let scored = ticket.wait()?;
        assert_eq!(&scored.report, direct);
        replicas_used[scored.replica] += 1;
    }
    println!(
        "sharded endpoint: {} windows over 3 replicas {:?}, {:.1}% escalated fleet-wide",
        sharded.stats("trusted")?.windows,
        replicas_used,
        100.0 * sharded.stats("trusted")?.escalation_rate()
    );
    Ok(())
}
