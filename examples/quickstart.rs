//! Quickstart: train a trusted (uncertainty-aware) HMD on simulated DVFS
//! signatures and compare it with the conventional untrusted detector.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hmd::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Simulate a DVFS signature corpus and split it the way the paper does:
    //    train / known-test / unknown (zero-day proxy applications).
    let split = DvfsCorpusBuilder::new()
        .with_samples_per_app(20)
        .with_trace_len(384)
        .build_split(42)?;
    println!(
        "corpus: {} train, {} known-test, {} unknown signatures ({} features)",
        split.train.len(),
        split.test_known.len(),
        split.unknown.len(),
        split.train.num_features()
    );

    // 2. Train the paper's trusted HMD: a bagging ensemble of decision trees
    //    behind a standard-scaling front end, with an entropy threshold of 0.4.
    let builder = TrustedHmdBuilder::new(DecisionTreeParams::new())
        .with_num_estimators(25)
        .with_entropy_threshold(0.4);
    let trusted = builder.fit(&split.train, 7)?;

    // ... and the conventional untrusted baseline (a single classifier).
    let untrusted = builder.fit_untrusted(&split.train, 7)?;

    // 3. On the known test set the two agree and the accuracy is high.
    let known_predictions = trusted.predict_dataset(&split.test_known)?;
    let known_labels: Vec<Label> = known_predictions.iter().map(|p| p.label).collect();
    println!(
        "known test F1 (trusted ensemble):   {:.3}",
        f1_score(split.test_known.labels(), &known_labels)
    );
    let untrusted_labels = untrusted.predict_dataset(&split.test_known)?;
    println!(
        "known test F1 (untrusted baseline): {:.3}",
        f1_score(split.test_known.labels(), &untrusted_labels)
    );

    // 4. On *unknown* applications the untrusted HMD silently guesses, while
    //    the trusted HMD reports high uncertainty and escalates.
    let mut escalated = 0usize;
    for i in 0..split.unknown.len() {
        let report = trusted.detect(split.unknown.features().row(i))?;
        if report.decision.is_escalation() {
            escalated += 1;
        }
    }
    println!(
        "unknown (zero-day proxy) signatures escalated by the trusted HMD: {}/{} ({:.1}%)",
        escalated,
        split.unknown.len(),
        100.0 * escalated as f64 / split.unknown.len() as f64
    );
    println!("the untrusted baseline emitted a (blind) verdict for every one of them");
    Ok(())
}
