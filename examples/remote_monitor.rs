//! Remote monitoring over the loopback wire protocol: the serving fleet of
//! `online_monitor`, moved behind a process boundary.
//!
//! An in-process [`FleetServer`] fronts a two-replica [`ShardedFleet`] with
//! the protocol specified in `PROTOCOL.md`: length-prefixed JSON frames,
//! typed responses, stable error codes. A [`FleetClient`] — the role a
//! monitor daemon on another host would play — deploys a trained detector
//! *over the wire*, streams signatures through fault-injected loopback TCP,
//! and recovers from every scheduled transport fault (dropped connection,
//! slow reader, truncated frame, garbage frame) with deterministic
//! exponential backoff. Every row that survives the chaos scores
//! **bit-identically** to calling the detector directly: the process
//! boundary changes where a request queues, never what it scores.
//!
//! The closing health query shows the supervision counters a remote
//! dashboard would poll, and the shutdown sequence demonstrates that the
//! server drains pending responses before closing.
//!
//! ```text
//! cargo run --release --example remote_monitor
//! ```

use hmd::core::detector::save;
use hmd::dvfs::apps::AppCatalog;
use hmd::prelude::*;
use hmd::serve::{ClientConfig, FleetClient, FleetServer, NetError, RetryPolicy, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::sync::Arc;
use std::time::Duration;

/// Replicas behind the served endpoint.
const REPLICAS: usize = 2;

fn main() -> Result<(), Box<dyn Error>> {
    let builder = DvfsCorpusBuilder::new()
        .with_samples_per_app(20)
        .with_trace_len(384);
    let split = builder.build_split(55)?;

    // Train offline and keep a local reference copy: seeded fits are
    // deterministic, so the reference scores are the ground truth the wire
    // results must match bit-for-bit.
    let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
        .with_num_estimators(25)
        .with_entropy_threshold(0.4);
    let reference = config.fit(&split.train, 13)?;
    let document = save(reference.as_ref())?;

    // The serving side: an empty sharded fleet behind a loopback server
    // whose transport misbehaves on a fixed schedule. Frames are counted
    // across the server's lifetime, so each fault fires exactly once.
    let fleet = Arc::new(ShardedFleet::with_config(
        ShardConfig::new(REPLICAS).with_flush(FlushPolicy::new(64, Duration::from_millis(5))),
    ));
    let chaos = FaultPlan::new()
        .drop_connection(4)
        .slow_reader(7, Duration::from_millis(25))
        .truncate_frame(10)
        .garbage_frame(14);
    let server = FleetServer::bind(
        Arc::clone(&fleet),
        ServerConfig::new().with_fault_plan(chaos),
    )?;
    println!(
        "fleet server listening on {} (transport faults scheduled: \
         drop@4, slow@7, truncate@10, garbage@14)\n",
        server.local_addr()
    );

    // The monitoring side: a blocking client with seeded retry/backoff.
    // Everything below goes through real TCP.
    let retry = RetryPolicy::new()
        .with_max_attempts(5)
        .with_backoff(Duration::from_millis(2), Duration::from_millis(50))
        .with_jitter_seed(99);
    let mut client =
        FleetClient::connect(server.local_addr(), ClientConfig::new().with_retry(retry))?;

    // Deploy over the wire: the saved document travels inside the frame and
    // the server restores it on every replica.
    let version = client.deploy_document("edge-hmd", &document)?;
    println!(
        "deployed edge-hmd v{version} over the wire ({} byte document)",
        document.len()
    );

    // Stream signatures through the faulty transport. The client absorbs
    // every fault behind `score`; the caller just sees reports.
    let catalog = AppCatalog::standard();
    let known: Vec<_> = catalog.known_apps().into_iter().cloned().collect();
    let unknown: Vec<_> = catalog.unknown_apps().into_iter().cloned().collect();
    let mut rng = StdRng::seed_from_u64(99);

    println!(
        "\n{:<30} {:>3} {:>9} {:>8} {:>11}   decision",
        "application", "rep", "class", "entropy", "P(malware)"
    );
    let mut mismatches = 0usize;
    for step in 0..16 {
        let (app, label) = if step % 4 == 3 {
            let app = &unknown[step % unknown.len()];
            (app.clone(), app.label)
        } else {
            let app = &known[step % known.len()];
            (app.clone(), app.label)
        };
        let signature = builder.simulate_signature(&app, &mut rng);
        let scored = client.score("edge-hmd", &signature)?;
        let direct = reference.detect(&signature)?;
        if scored.report != direct {
            mismatches += 1;
        }
        let decision = match scored.report.decision {
            Decision::Accept(label) => format!("accept ({label})"),
            Decision::Escalate => "ESCALATE to analyst".to_string(),
        };
        println!(
            "{:<30} {:>3} {:>9} {:>8.3} {:>11.2}   {}",
            app.name,
            format!("r{}", scored.replica),
            label.to_string(),
            scored.report.prediction.entropy,
            scored.report.prediction.malware_vote_fraction,
            decision
        );
    }

    let cstats = client.stats();
    let sstats = server.stats();
    println!(
        "\ntransport: {} faults injected server-side; client recovered with \
         {} retries across {} connections",
        sstats.faults_injected, cstats.retries, cstats.connects
    );
    println!(
        "wire-vs-direct mismatches: {mismatches} (the process boundary never \
         perturbs a report)"
    );
    assert_eq!(mismatches, 0, "bit-identity holds across the wire");

    // Semantic errors are typed, not stringly: an unknown endpoint comes
    // back as the same FleetError an in-process caller would see, with its
    // stable protocol code.
    match client.score("no-such-endpoint", &[0.0; 4]) {
        Err(err @ NetError::Fleet(FleetError::UnknownEndpoint { .. })) => {
            println!(
                "\ntyped error across the wire (code {}): {err}",
                err.code().expect("fleet errors carry codes")
            );
        }
        other => return Err(format!("expected UnknownEndpoint, got {other:?}").into()),
    }

    // The dashboard poll: per-replica supervision health over the wire.
    println!("\nper-replica health (remote query):");
    for (replica, health) in client.health("edge-hmd")?.iter().enumerate() {
        println!(
            "  replica {replica}: breaker {:?}, {} pending rows, \
             {} shed (overload), {} degraded, {} breaker trips",
            health.breaker,
            health.pending_rows,
            health.shed_overload,
            health.degraded_rows,
            health.breaker_trips
        );
    }

    server.shutdown();
    println!("\nserver drained and shut down cleanly");
    Ok(())
}
