//! The closed online loop, end to end: a champion detector serves simulated
//! DVFS telemetry behind a sharded fleet while a `LoopSupervisor` watches
//! the endpoint's reset-on-read window statistics. When the workload mix
//! drifts to zero-day proxy families the champion has never seen, the
//! supervisor detects the escalation-rate shift (Page–Hinkley), retrains a
//! challenger on its labelled sliding window, shadows it on the same served
//! tiles (callers keep receiving champion reports — bit-identical by
//! construction), promotes it through the `ChallengerNoWorse` gate, and
//! verifies the new champion against the healthy baseline before declaring
//! the loop closed. Every transition lands in the auditable event log this
//! example prints at the end.
//!
//! ```text
//! cargo run --release --example closed_loop
//! ```

use hmd::dvfs::apps::{AppCatalog, AppProfile};
use hmd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::sync::Arc;
use std::time::Duration;

const ENDPOINT: &str = "edge-hmd";
const BATCH: usize = 32;

/// One labelled micro-batch of fresh signatures drawn from `apps`.
fn batch(
    builder: &DvfsCorpusBuilder,
    apps: &[&AppProfile],
    rng: &mut StdRng,
) -> Result<Dataset, Box<dyn Error>> {
    let mut rows = Vec::with_capacity(BATCH);
    let mut labels = Vec::with_capacity(BATCH);
    for i in 0..BATCH {
        let app = apps[i % apps.len()];
        rows.push(builder.simulate_signature(app, rng));
        labels.push(app.label);
    }
    Ok(Dataset::new(Matrix::from_rows(&rows)?, labels)?)
}

/// Serves one batch, feeds the supervisor's labelled window, ticks the
/// loop, and returns (escalations, state after the tick).
fn serve_and_tick(
    fleet: &ShardedFleet,
    supervisor: &mut LoopSupervisor,
    stream: &Dataset,
) -> Result<(usize, LoopState), Box<dyn Error>> {
    let served = fleet.score_batch(ENDPOINT, stream.features())?;
    let escalated = served
        .iter()
        .filter(|s| s.report.decision.label().is_none())
        .count();
    for (row, label) in stream.features().iter_rows().zip(stream.labels()) {
        supervisor.ingest(row, *label);
    }
    // A starved window just means labels have not caught up yet.
    let state = match supervisor.tick() {
        Ok(state) => state,
        Err(LoopError::WindowStarved { .. }) => supervisor.state(),
        Err(other) => return Err(other.into()),
    };
    Ok((escalated, state))
}

fn main() -> Result<(), Box<dyn Error>> {
    let builder = DvfsCorpusBuilder::new()
        .with_samples_per_app(6)
        .with_trace_len(192);
    let catalog = AppCatalog::standard();
    let known: Vec<&AppProfile> = catalog.known_apps();
    let drifted: Vec<&AppProfile> = catalog
        .unknown_apps()
        .into_iter()
        .chain(known.iter().copied().take(2))
        .collect();
    let mut rng = StdRng::seed_from_u64(4242);

    // Champion trained offline on the known workload mix.
    let recipe = DetectorConfig::trusted(DetectorBackend::random_forest())
        .with_num_estimators(11)
        .with_entropy_threshold(0.4);
    let split = builder.build_split(7)?;
    let champion = recipe.clone().fit(&split.train, 13)?;

    let fleet = Arc::new(ShardedFleet::with_config(
        ShardConfig::new(2).with_flush(FlushPolicy::new(BATCH, Duration::from_millis(50))),
    ));
    let v1 = fleet.deploy(ENDPOINT, champion)?;
    println!(
        "deployed {} as {ENDPOINT} v{v1} x{} replicas",
        fleet.detector_name(ENDPOINT)?,
        fleet.replicas(ENDPOINT)?
    );

    let mut config = LoopConfig::new(recipe);
    config.drift = DriftPolicy {
        calibration_windows: 3,
        min_window_rows: 8,
        ..DriftPolicy::default()
    };
    config.window_capacity = 8 * BATCH;
    config.min_retrain_rows = 4 * BATCH;
    config.shadow_rows = 2 * BATCH as u64;
    config.verify_rows = 2 * BATCH;
    let mut supervisor = LoopSupervisor::new(Arc::clone(&fleet), ENDPOINT, config);

    // Healthy traffic calibrates the drift baseline.
    for round in 0..5 {
        let stream = batch(&builder, &known, &mut rng)?;
        let (escalated, state) = serve_and_tick(&fleet, &mut supervisor, &stream)?;
        println!("healthy round {round}: {escalated}/{BATCH} escalated, state {state:?}");
    }

    // The workload mix drifts to the zero-day proxies; keep serving until
    // the loop has detected, retrained, shadowed, promoted and verified.
    println!("\n-- workload mix drifts to unknown app families --");
    let mut last_state = LoopState::Monitoring;
    for round in 0..48 {
        let stream = batch(&builder, &drifted, &mut rng)?;
        let (escalated, state) = serve_and_tick(&fleet, &mut supervisor, &stream)?;
        if state != last_state {
            println!(
                "drifted round {round}: {escalated}/{BATCH} escalated, state {last_state:?} -> {state:?}"
            );
            last_state = state;
        }
        let closed = supervisor.events().iter().any(|e| {
            matches!(
                e,
                LoopEvent::Recovered { .. } | LoopEvent::RolledBack { .. }
            )
        });
        if closed {
            break;
        }
    }

    println!(
        "\nactive version: v{} ({})",
        fleet.active_version(ENDPOINT)?,
        fleet.detector_name(ENDPOINT)?
    );
    println!("audit log:");
    for event in supervisor.events() {
        println!("  {event:?}");
    }

    let recovered = supervisor
        .events()
        .iter()
        .any(|e| matches!(e, LoopEvent::Recovered { .. }));
    if !recovered {
        return Err("loop did not close with a recovery".into());
    }
    println!("\nloop closed: drift -> retrain -> shadow -> promote -> verify");
    Ok(())
}
