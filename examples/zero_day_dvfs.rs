//! Zero-day detection on the DVFS HMD (the paper's §V.A experiment).
//!
//! Trains RF, LR and SVM bagging ensembles on the known applications and
//! shows that the entropy of the ensemble votes separates unknown (held-out)
//! applications from known ones — the paper's headline result is that a
//! threshold of ≈0.40 rejects ~95 % of unknown workloads while rejecting
//! <5 % of known ones for the RF ensemble.
//!
//! As a coda, the example turns the rejection option against an *active*
//! adversary: a perturbation-bounded evasion search (`hmd::threat::evade`)
//! tries to flip malware signatures to benign within a relative L∞ budget,
//! and the entropy threshold escalates the flipped rows a conventional
//! pipeline would silently accept.
//!
//! ```text
//! cargo run --release --example zero_day_dvfs
//! ```

use hmd::prelude::*;
use hmd::threat::{evade_batch, EvasionBudget};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let split = DvfsCorpusBuilder::new()
        .with_samples_per_app(30)
        .with_trace_len(512)
        .build_split(11)?;
    println!(
        "DVFS corpus: {} train / {} known-test / {} unknown\n",
        split.train.len(),
        split.test_known.len(),
        split.unknown.len()
    );

    let thresholds = threshold_grid(0.0, 0.75, 0.05);
    let mut curves: Vec<RejectionCurve> = Vec::new();

    // All three base-classifier families serve through the same Detector
    // contract; only the backend of the config changes. SVM is the family the
    // paper reports poor uncertainty quality for.
    let backends = [
        (
            "RF",
            DetectorBackend::RandomForest(RandomForestParams::new().with_num_trees(11)),
        ),
        (
            "LR",
            DetectorBackend::LogisticRegression(LogisticRegressionParams::new().with_epochs(200)),
        ),
        (
            "SVM",
            DetectorBackend::LinearSvm(LinearSvmParams::new().with_epochs(40)),
        ),
    ];
    let mut rf_detector = None;
    for (label, backend) in backends {
        let detector = DetectorConfig::trusted(backend)
            .with_num_estimators(25)
            .fit(&split.train, 3)?;
        let known =
            hmd::core::detector::predictions(&detector.detect_batch(split.test_known.features())?);
        let unknown =
            hmd::core::detector::predictions(&detector.detect_batch(split.unknown.features())?);
        curves.push(RejectionCurve::sweep(label, &known, &unknown, &thresholds));
        if label == "RF" {
            rf_detector = Some(detector);
        }
    }

    println!("rejected inputs (%) vs entropy threshold  [unknown | known]");
    print!("{:>9}", "threshold");
    for curve in &curves {
        print!("  {:>13}", curve.model_name);
    }
    println!();
    for (i, threshold) in thresholds.iter().enumerate() {
        print!("{threshold:>9.2}");
        for curve in &curves {
            let p = &curve.points[i];
            print!(
                "  {:>6.1}|{:>6.1}",
                p.unknown_rejected_pct, p.known_rejected_pct
            );
        }
        println!();
    }

    println!("\nseparation (mean unknown-minus-known rejection, percentage points):");
    for curve in &curves {
        println!("  {:<4} {:>6.1}", curve.model_name, curve.separation());
    }

    if let Some(op) = curves[0].operating_point(5.0) {
        println!(
            "\nheadline: RF threshold {:.2} rejects {:.1}% of unknown workloads at {:.1}% known rejection",
            op.threshold, op.unknown_rejected_pct, op.known_rejected_pct
        );
        println!(
            "paper:    RF threshold 0.40 rejects ~95% of unknown workloads at <5% known rejection"
        );
    }

    // ---- Adversarial coda: bounded evasion vs the rejection option ------
    // Attack the RF ensemble with a greedy per-feature search: each malware
    // signature may move within ±30 % of each feature's magnitude. The
    // interesting number is not how many predictions flip — it is how many
    // of the flips the entropy threshold escalates instead of accepting.
    let detector = rf_detector.expect("RF is in the backend list");
    let malware_rows: Vec<Vec<f64>> = split
        .test_known
        .features()
        .iter_rows()
        .zip(split.test_known.labels())
        .filter(|(_, label)| **label == Label::Malware)
        .map(|(row, _)| row.to_vec())
        .take(16)
        .collect();
    let budget = EvasionBudget::new(0.3)?.with_passes(3);
    let (summary, _) = evade_batch(detector.as_ref(), &malware_rows, &budget)?;
    println!(
        "\nevasion (L∞ 0.3, {} malware signatures attacked):",
        summary.attacked
    );
    println!(
        "  predictions flipped:      {:>2}  (flip rate {:.0}%)",
        summary.flipped_predictions,
        100.0 * summary.flip_rate()
    );
    println!(
        "  escalated by uncertainty: {:>2}  (caught {:.0}% of flips)",
        summary.escalated_evasions,
        100.0 * summary.caught_fraction()
    );
    println!(
        "  silently accepted:        {:>2}  (what an untrusted HMD would act on)",
        summary.accepted_evasions
    );
    Ok(())
}
