//! The HPC negative result (the paper's §V.B experiment).
//!
//! Benign and malware programs exercise the micro-architecture in overlapping
//! ways, so the HPC-based HMD shows high *data* (aleatoric) uncertainty even
//! on in-distribution inputs: known and unknown samples have similar entropy,
//! rejection cannot separate them, but rejecting uncertain predictions still
//! raises the precision (and F1) of what remains.
//!
//! ```text
//! cargo run --release --example hpc_overlap
//! ```

use hmd::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let split = HpcCorpusBuilder::new()
        .with_samples_per_app(60)
        .build_split(7)?;
    println!(
        "HPC corpus: {} train / {} known-test / {} unknown\n",
        split.train.len(),
        split.test_known.len(),
        split.unknown.len()
    );

    let detector = DetectorConfig::trusted(DetectorBackend::RandomForest(
        RandomForestParams::new().with_num_trees(11),
    ))
    .with_num_estimators(25)
    .fit(&split.train, 5)?;

    let known =
        hmd::core::detector::predictions(&detector.detect_batch(split.test_known.features())?);
    let unknown =
        hmd::core::detector::predictions(&detector.detect_batch(split.unknown.features())?);

    // Entropy distributions (Fig. 5): known data is already uncertain.
    let pair = KnownUnknownEntropy::new(
        &known.iter().map(|p| p.entropy).collect::<Vec<_>>(),
        &unknown.iter().map(|p| p.entropy).collect::<Vec<_>>(),
    );
    println!(
        "entropy medians:  known {:.3}   unknown {:.3}   gap {:.3}",
        pair.known.median,
        pair.unknown.median,
        pair.median_gap()
    );

    // Rejection curves (Fig. 9b): known and unknown track each other.
    let curve = RejectionCurve::sweep("RF-HPC", &known, &unknown, &threshold_grid(0.0, 0.80, 0.05));
    println!(
        "rejection-curve separation: {:.1} percentage points (the DVFS HMD exceeds 40)",
        curve.separation()
    );

    // F1 of accepted predictions (Fig. 7b): rejecting uncertain predictions
    // trades recall for precision and lifts the F1 of what remains.
    let mut predictions = known.clone();
    predictions.extend(unknown.iter().copied());
    let mut truth = split.test_known.labels().to_vec();
    truth.extend_from_slice(split.unknown.labels());
    let f1_curve = F1Curve::sweep(
        "RF-HPC",
        &predictions,
        &truth,
        &threshold_grid(0.0, 0.85, 0.05),
    );
    let accept_all = f1_curve.points.last().expect("non-empty curve");
    println!(
        "\n{:>9} {:>8} {:>10} {:>8} {:>14}",
        "threshold", "f1", "precision", "recall", "accepted frac"
    );
    for p in &f1_curve.points {
        println!(
            "{:>9.2} {:>8.3} {:>10.3} {:>8.3} {:>14.2}",
            p.threshold, p.f1, p.precision, p.recall, p.accepted_fraction
        );
    }
    println!(
        "\nbest accepted-F1 {:.3} vs accept-everything F1 {:.3}",
        f1_curve.best_f1(),
        accept_all.f1
    );
    Ok(())
}
