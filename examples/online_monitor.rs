//! Online monitoring: the deployment scenario the paper motivates.
//!
//! A trusted HMD is trained offline, then watches a stream of fresh
//! signatures arriving from the device. Known applications are classified
//! confidently; when a zero-day (an application family the detector has
//! never seen) starts running, its signatures arrive with high entropy and
//! the detector escalates them for forensics instead of silently guessing.
//!
//! ```text
//! cargo run --release --example online_monitor
//! ```

use hmd::core::trusted::Decision;
use hmd::dvfs::apps::AppCatalog;
use hmd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let builder = DvfsCorpusBuilder::new()
        .with_samples_per_app(20)
        .with_trace_len(384);
    let split = builder.build_split(55)?;

    let hmd = TrustedHmdBuilder::new(DecisionTreeParams::new())
        .with_num_estimators(25)
        .with_entropy_threshold(0.4)
        .fit(&split.train, 13)?;

    // Simulate an online stream: alternate known applications with bursts of
    // a zero-day (held-out) application, generating each signature on the fly.
    let catalog = AppCatalog::standard();
    let known_apps: Vec<_> = catalog.known_apps().into_iter().cloned().collect();
    let unknown_apps: Vec<_> = catalog.unknown_apps().into_iter().cloned().collect();
    let mut rng = StdRng::seed_from_u64(99);

    println!(
        "{:<30} {:>9} {:>8} {:>9}   decision",
        "application", "class", "entropy", "P(malware)"
    );
    let mut escalations_on_unknown = 0usize;
    let mut unknown_seen = 0usize;
    for step in 0..30 {
        // every third signature comes from a zero-day application
        let (app, is_unknown) = if step % 3 == 2 {
            (&unknown_apps[step % unknown_apps.len()], true)
        } else {
            (&known_apps[step % known_apps.len()], false)
        };
        let signature = builder.simulate_signature(app, &mut rng);
        let report = hmd.detect(&signature)?;
        let decision = match report.decision {
            Decision::Accept(label) => format!("accept ({label})"),
            Decision::Escalate => "ESCALATE to analyst".to_string(),
        };
        if is_unknown {
            unknown_seen += 1;
            if report.decision.is_escalation() {
                escalations_on_unknown += 1;
            }
        }
        println!(
            "{:<30} {:>9} {:>8.3} {:>9.2}   {}",
            app.name,
            app.label.to_string(),
            report.prediction.entropy,
            report.prediction.malware_vote_fraction,
            decision
        );
    }
    println!(
        "\nzero-day signatures escalated: {escalations_on_unknown}/{unknown_seen}"
    );
    Ok(())
}
