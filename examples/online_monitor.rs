//! Online monitoring through the sharded serving fleet: the deployment
//! scenario the paper motivates, served the way a production DAQ central
//! unit would — replicated back-end units behind one logical endpoint.
//!
//! A trusted HMD is described by a `DetectorConfig`, trained offline, saved,
//! and the *restored* copy — as it would be on the deployment host — is
//! published as a named endpoint of a `ShardedFleet`, which clones it across
//! two replicas through the same codec (bit-identical by the persistence
//! guarantee). The monitored stream submits one signature at a time with
//! `score_keyed`: every burst is one edge-device session, and key-affinity
//! routing pins a session to one replica so its rows micro-batch together
//! (the tile drains inline when the session's `max_batch`-th row lands).
//! Each ordered `ShardTicket` resolves to a version-stamped report that is
//! bit-identical to direct scoring and attributes the replica that served
//! it.
//!
//! Known applications are classified confidently; when a zero-day (an
//! application family the detector has never seen) starts running, its
//! signatures arrive with high entropy and the detector escalates them for
//! forensics instead of silently guessing. Mid-stream the example hot-swaps
//! a stricter model version — the deploy fans out to every replica in
//! lock-step, in-flight requests finish on the version that accepted them,
//! and every printed report carries the version that scored it — then rolls
//! back. The per-endpoint statistics a dashboard would display merge across
//! replicas (`fleet.stats`), with `fleet.replica_stats` as the per-replica
//! breakdown.
//!
//! The closing **supervision drill** exercises the same machinery under
//! misbehaviour: a burst beyond the admission budget sheds with
//! `Overloaded` instead of growing memory; a `FaultInjector`-wrapped
//! detector trips its circuit breaker, degraded requests are escalated to
//! the analyst (the serving-layer analogue of the paper's rejection
//! option) rather than guessed, and after the cooldown a half-open probe
//! restores service; and breaker-aware `LeastLoaded` routing steers a
//! sharded endpoint's traffic around its broken replica.
//!
//! ```text
//! cargo run --release --example online_monitor
//! ```

use hmd::core::detector::{load, save};
use hmd::dvfs::apps::AppCatalog;
use hmd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::time::Duration;

/// Windows per micro-batch burst: matches the per-replica `max_batch`, so
/// each session's burst drains as one tile through the batch hot path.
const BURST: usize = 3;

/// Replicas behind the endpoint: each has its own tile and statistics.
const REPLICAS: usize = 2;

fn main() -> Result<(), Box<dyn Error>> {
    let builder = DvfsCorpusBuilder::new()
        .with_samples_per_app(20)
        .with_trace_len(384);
    let split = builder.build_split(55)?;

    // Train offline, persist, and deploy the restored pipeline — the
    // save/load round trip is exactly what a model registry would do, and
    // the sharded fleet repeats it per replica.
    let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
        .with_num_estimators(25)
        .with_entropy_threshold(0.4);
    let trained = config.fit(&split.train, 13)?;
    let document = save(trained.as_ref())?;

    let fleet = ShardedFleet::with_config(
        ShardConfig::new(REPLICAS)
            .with_policy(RoutePolicy::KeyAffinity)
            .with_flush(FlushPolicy::new(BURST, Duration::from_millis(5))),
    );
    let v1 = fleet.deploy("edge-hmd", load(&document)?)?;
    println!(
        "deployed {} as edge-hmd v{v1} x{} replicas ({} byte model document)\n",
        fleet.detector_name("edge-hmd")?,
        fleet.replicas("edge-hmd")?,
        document.len()
    );

    // Simulate an online stream: alternate known applications with bursts of
    // a zero-day (held-out) application, generating each signature on the fly.
    let catalog = AppCatalog::standard();
    let known_apps: Vec<_> = catalog.known_apps().into_iter().cloned().collect();
    let unknown_apps: Vec<_> = catalog.unknown_apps().into_iter().cloned().collect();
    let mut rng = StdRng::seed_from_u64(99);

    println!(
        "{:<30} {:>3} {:>3} {:>9} {:>8} {:>9}   decision",
        "application", "ver", "rep", "class", "entropy", "P(malware)"
    );
    let mut escalations_on_unknown = 0usize;
    let mut unknown_seen = 0usize;
    for burst in 0..10 {
        // Halfway through the stream, hot-swap a stricter version: a larger
        // ensemble with a tighter escalation threshold. The deploy fans out
        // to both replicas under the generation lock; requests already
        // queued finish on v1, every later report is stamped v2.
        if burst == 5 {
            let stricter = DetectorConfig::trusted(DetectorBackend::decision_tree())
                .with_num_estimators(35)
                .with_entropy_threshold(0.3)
                .fit(&split.train, 14)?;
            let v2 = fleet.deploy("edge-hmd", stricter)?;
            println!(
                "--- hot swap: {} now serves as v{v2} on every replica ---",
                fleet.detector_name("edge-hmd")?
            );
        }

        // One burst = one edge-device session = BURST keyed score() calls.
        // Key affinity pins the session to one replica, so the session's
        // tile drains inline when its BURST-th request lands.
        let session_key = burst as u64;
        let mut in_flight = Vec::new();
        for slot in 0..BURST {
            let step = burst * BURST + slot;
            // every third signature comes from a zero-day application
            let (app, is_unknown) = if step % 3 == 2 {
                (&unknown_apps[step % unknown_apps.len()], true)
            } else {
                (&known_apps[step % known_apps.len()], false)
            };
            let signature = builder.simulate_signature(app, &mut rng);
            let ticket = fleet.score_keyed("edge-hmd", session_key, &signature)?;
            in_flight.push((app.name.clone(), app.label, is_unknown, ticket));
        }
        for (name, label, is_unknown, ticket) in in_flight {
            let scored = ticket.wait()?;
            let decision = match scored.report.decision {
                Decision::Accept(label) => format!("accept ({label})"),
                Decision::Escalate => "ESCALATE to analyst".to_string(),
            };
            if is_unknown {
                unknown_seen += 1;
                if scored.report.decision.is_escalation() {
                    escalations_on_unknown += 1;
                }
            }
            println!(
                "{:<30} {:>3} {:>3} {:>9} {:>8.3} {:>9.2}   {}",
                name,
                format!("v{}", scored.version),
                format!("r{}", scored.replica),
                label.to_string(),
                scored.report.prediction.entropy,
                scored.report.prediction.malware_vote_fraction,
                decision
            );
        }
    }

    // The dashboard view: per-replica statistics and the merged endpoint
    // view a fleet-wide alerting rule would read.
    let stats = fleet.stats("edge-hmd")?;
    println!(
        "\nendpoint edge-hmd: {} windows, {} accepted ({} malware / {} benign), {} escalated",
        stats.windows,
        stats.accepted,
        stats.accepted_malware,
        stats.accepted_benign,
        stats.escalated
    );
    println!(
        "entropy: mean {:.3}, min {:.3}, max {:.3}; escalation rate {:.1}%",
        stats.mean_entropy(),
        stats.min_entropy,
        stats.max_entropy,
        100.0 * stats.escalation_rate()
    );
    for (replica, rs) in fleet.replica_stats("edge-hmd")?.iter().enumerate() {
        println!(
            "  replica {replica}: {} windows, {:.1}% escalated",
            rs.windows,
            100.0 * rs.escalation_rate()
        );
    }
    println!("zero-day signatures escalated: {escalations_on_unknown}/{unknown_seen}");

    // Operations can always back out: restore the previous version on
    // every replica at once.
    let restored = fleet.rollback("edge-hmd")?;
    println!(
        "rolled back to v{restored}: {} serves again on all {} replicas",
        fleet.detector_name("edge-hmd")?,
        fleet.replicas("edge-hmd")?
    );

    let probe_row = builder.simulate_signature(&known_apps[0], &mut rng);
    supervision_drill(&document, &probe_row)?;
    Ok(())
}

/// The serving layer under misbehaviour: overload sheds, breakers trip and
/// recover, routing steers around broken replicas. Every fault here is
/// scheduled by a deterministic [`FaultPlan`], so the drill plays out the
/// same way on every run.
fn supervision_drill(document: &str, probe_row: &[f64]) -> Result<(), Box<dyn Error>> {
    use hmd::core::detector::load;

    println!("\n--- supervision drill ---");

    // Overload: a 4-row admission budget on a big tile. The burst's first
    // four requests are admitted; the rest shed with `Overloaded` *before*
    // their rows are copied anywhere — overload costs the caller an error,
    // never the fleet memory.
    let gate = DetectorFleet::with_config(
        FleetConfig::default()
            .with_flush(FlushPolicy::new(64, Duration::from_secs(1)))
            .with_admission(AdmissionPolicy::new(4)),
    );
    gate.deploy("edge-hmd", load(document)?);
    let mut admitted = Vec::new();
    for _ in 0..7 {
        match gate.score("edge-hmd", probe_row) {
            Ok(ticket) => admitted.push(ticket),
            Err(FleetError::Overloaded { depth, limit }) => {
                println!("overload: shed at depth {depth}/{limit}");
            }
            Err(other) => return Err(other.into()),
        }
    }
    gate.flush("edge-hmd")?;
    for ticket in admitted {
        ticket.wait()?;
    }
    let health = gate.health("edge-hmd")?;
    println!(
        "overload: 4 admitted + {} shed; budget released, {} rows pending\n",
        health.shed_overload, health.pending_rows
    );

    // Breaker: a replica that fails its first two calls. Threshold 2 trips
    // it to Open; under `EscalateUncertain` the shed requests are answered
    // with a synthetic maximum-uncertainty escalation — the paper's
    // rejection option applied to infrastructure faults: when the detector
    // cannot be trusted, hand the window to the analyst, don't guess.
    let flaky = FaultInjector::new(load(document)?, FaultPlan::new().fail_call(1).fail_call(2));
    let solo = DetectorFleet::with_config(
        FleetConfig::default()
            .with_flush(FlushPolicy::new(1, Duration::from_secs(1)))
            .with_breaker(
                BreakerPolicy::new(2, Duration::from_millis(50))
                    .with_fallback(FallbackPolicy::EscalateUncertain),
            ),
    );
    solo.deploy("edge-hmd", Box::new(flaky));
    for call in 1..=2 {
        let err = solo.score("edge-hmd", probe_row)?.wait().unwrap_err();
        println!("breaker: call {call} failed ({err})");
    }
    println!(
        "breaker: state {:?} after 2 consecutive failures ({} trip recorded)",
        solo.breaker_state("edge-hmd")?,
        solo.health("edge-hmd")?.breaker_trips
    );
    let degraded = solo.score("edge-hmd", probe_row)?.wait()?;
    println!(
        "breaker: degraded answer — {:?}, entropy {} (excluded from monitor stats)",
        degraded.report.decision, degraded.report.prediction.entropy
    );
    std::thread::sleep(Duration::from_millis(60)); // let the cooldown elapse
    let recovered = solo.score("edge-hmd", probe_row)?.wait()?;
    println!(
        "breaker: half-open probe succeeded — state {:?}, real report {:?}\n",
        solo.breaker_state("edge-hmd")?,
        recovered.report.decision
    );

    // Routing: the same flaky-first-call model behind a 2-replica sharded
    // endpoint. Fault plans are deliberately not persistable, so
    // `deploy_replicas` hands each replica its own detector instead of
    // codec-cloning one. After replica 0 trips, breaker-aware LeastLoaded
    // steers every request to the healthy replica.
    let drill = ShardedFleet::with_config(
        ShardConfig::new(REPLICAS)
            .with_policy(RoutePolicy::LeastLoaded)
            .with_flush(FlushPolicy::new(1, Duration::from_secs(1)))
            .with_breaker(BreakerPolicy::new(1, Duration::from_millis(250))),
    );
    drill.deploy_replicas(
        "edge-hmd",
        vec![
            Box::new(FaultInjector::new(
                load(document)?,
                FaultPlan::new().fail_call(1),
            )),
            load(document)?,
        ],
    )?;
    let first = drill.score("edge-hmd", probe_row)?;
    println!(
        "routing: replica {} failed its first call ({})",
        first.replica(),
        first.wait().unwrap_err()
    );
    for _ in 0..3 {
        let scored = drill.score("edge-hmd", probe_row)?.wait()?;
        println!(
            "routing: served by replica {} ({:?})",
            scored.replica, scored.report.decision
        );
    }
    println!(
        "routing: breaker states {:?}",
        drill.breaker_states("edge-hmd")?
    );
    Ok(())
}
