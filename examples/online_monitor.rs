//! Online monitoring: the deployment scenario the paper motivates.
//!
//! A trusted HMD is described by a `DetectorConfig`, trained offline, saved,
//! and the *restored* copy — as it would be on the deployment host — watches
//! a stream of fresh signatures through a `MonitorSession`. Known
//! applications are classified confidently; when a zero-day (an application
//! family the detector has never seen) starts running, its signatures arrive
//! with high entropy and the detector escalates them for forensics instead
//! of silently guessing. The session keeps the running statistics that an
//! operations dashboard would display.
//!
//! ```text
//! cargo run --release --example online_monitor
//! ```

use hmd::core::detector::{load, save};
use hmd::dvfs::apps::AppCatalog;
use hmd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let builder = DvfsCorpusBuilder::new()
        .with_samples_per_app(20)
        .with_trace_len(384);
    let split = builder.build_split(55)?;

    // Train offline, persist, and deploy the restored pipeline — the
    // save/load round trip is exactly what a model registry would do.
    let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
        .with_num_estimators(25)
        .with_entropy_threshold(0.4);
    let trained = config.fit(&split.train, 13)?;
    let document = save(trained.as_ref())?;
    let detector = load(&document)?;
    println!(
        "deployed {} ({} byte model document)\n",
        detector.name(),
        document.len()
    );

    // Simulate an online stream: alternate known applications with bursts of
    // a zero-day (held-out) application, generating each signature on the fly.
    let catalog = AppCatalog::standard();
    let known_apps: Vec<_> = catalog.known_apps().into_iter().cloned().collect();
    let unknown_apps: Vec<_> = catalog.unknown_apps().into_iter().cloned().collect();
    let mut rng = StdRng::seed_from_u64(99);

    let mut session = MonitorSession::new(detector.as_ref());
    println!(
        "{:<30} {:>9} {:>8} {:>9}   decision",
        "application", "class", "entropy", "P(malware)"
    );
    let mut escalations_on_unknown = 0usize;
    let mut unknown_seen = 0usize;
    for step in 0..30 {
        // every third signature comes from a zero-day application
        let (app, is_unknown) = if step % 3 == 2 {
            (&unknown_apps[step % unknown_apps.len()], true)
        } else {
            (&known_apps[step % known_apps.len()], false)
        };
        let signature = builder.simulate_signature(app, &mut rng);
        let report = session.observe(&signature)?;
        let decision = match report.decision {
            Decision::Accept(label) => format!("accept ({label})"),
            Decision::Escalate => "ESCALATE to analyst".to_string(),
        };
        if is_unknown {
            unknown_seen += 1;
            if report.decision.is_escalation() {
                escalations_on_unknown += 1;
            }
        }
        println!(
            "{:<30} {:>9} {:>8.3} {:>9.2}   {}",
            app.name,
            app.label.to_string(),
            report.prediction.entropy,
            report.prediction.malware_vote_fraction,
            decision
        );
    }

    let stats = session.stats();
    println!(
        "\nsession: {} windows, {} accepted ({} malware / {} benign), {} escalated",
        stats.windows,
        stats.accepted,
        stats.accepted_malware,
        stats.accepted_benign,
        stats.escalated
    );
    println!(
        "entropy: mean {:.3}, min {:.3}, max {:.3}; escalation rate {:.1}%",
        stats.mean_entropy(),
        stats.min_entropy,
        stats.max_entropy,
        100.0 * stats.escalation_rate()
    );
    println!("zero-day signatures escalated: {escalations_on_unknown}/{unknown_seen}");
    Ok(())
}
