//! Online monitoring through the sharded serving fleet: the deployment
//! scenario the paper motivates, served the way a production DAQ central
//! unit would — replicated back-end units behind one logical endpoint.
//!
//! A trusted HMD is described by a `DetectorConfig`, trained offline, saved,
//! and the *restored* copy — as it would be on the deployment host — is
//! published as a named endpoint of a `ShardedFleet`, which clones it across
//! two replicas through the same codec (bit-identical by the persistence
//! guarantee). The monitored stream submits one signature at a time with
//! `score_keyed`: every burst is one edge-device session, and key-affinity
//! routing pins a session to one replica so its rows micro-batch together
//! (the tile drains inline when the session's `max_batch`-th row lands).
//! Each ordered `ShardTicket` resolves to a version-stamped report that is
//! bit-identical to direct scoring and attributes the replica that served
//! it.
//!
//! Known applications are classified confidently; when a zero-day (an
//! application family the detector has never seen) starts running, its
//! signatures arrive with high entropy and the detector escalates them for
//! forensics instead of silently guessing. Mid-stream the example hot-swaps
//! a stricter model version — the deploy fans out to every replica in
//! lock-step, in-flight requests finish on the version that accepted them,
//! and every printed report carries the version that scored it — then rolls
//! back. The per-endpoint statistics a dashboard would display merge across
//! replicas (`fleet.stats`), with `fleet.replica_stats` as the per-replica
//! breakdown.
//!
//! ```text
//! cargo run --release --example online_monitor
//! ```

use hmd::core::detector::{load, save};
use hmd::dvfs::apps::AppCatalog;
use hmd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::time::Duration;

/// Windows per micro-batch burst: matches the per-replica `max_batch`, so
/// each session's burst drains as one tile through the batch hot path.
const BURST: usize = 3;

/// Replicas behind the endpoint: each has its own tile and statistics.
const REPLICAS: usize = 2;

fn main() -> Result<(), Box<dyn Error>> {
    let builder = DvfsCorpusBuilder::new()
        .with_samples_per_app(20)
        .with_trace_len(384);
    let split = builder.build_split(55)?;

    // Train offline, persist, and deploy the restored pipeline — the
    // save/load round trip is exactly what a model registry would do, and
    // the sharded fleet repeats it per replica.
    let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
        .with_num_estimators(25)
        .with_entropy_threshold(0.4);
    let trained = config.fit(&split.train, 13)?;
    let document = save(trained.as_ref())?;

    let fleet = ShardedFleet::with_config(
        ShardConfig::new(REPLICAS)
            .with_policy(RoutePolicy::KeyAffinity)
            .with_flush(FlushPolicy::new(BURST, Duration::from_millis(5))),
    );
    let v1 = fleet.deploy("edge-hmd", load(&document)?)?;
    println!(
        "deployed {} as edge-hmd v{v1} x{} replicas ({} byte model document)\n",
        fleet.detector_name("edge-hmd")?,
        fleet.replicas("edge-hmd")?,
        document.len()
    );

    // Simulate an online stream: alternate known applications with bursts of
    // a zero-day (held-out) application, generating each signature on the fly.
    let catalog = AppCatalog::standard();
    let known_apps: Vec<_> = catalog.known_apps().into_iter().cloned().collect();
    let unknown_apps: Vec<_> = catalog.unknown_apps().into_iter().cloned().collect();
    let mut rng = StdRng::seed_from_u64(99);

    println!(
        "{:<30} {:>3} {:>3} {:>9} {:>8} {:>9}   decision",
        "application", "ver", "rep", "class", "entropy", "P(malware)"
    );
    let mut escalations_on_unknown = 0usize;
    let mut unknown_seen = 0usize;
    for burst in 0..10 {
        // Halfway through the stream, hot-swap a stricter version: a larger
        // ensemble with a tighter escalation threshold. The deploy fans out
        // to both replicas under the generation lock; requests already
        // queued finish on v1, every later report is stamped v2.
        if burst == 5 {
            let stricter = DetectorConfig::trusted(DetectorBackend::decision_tree())
                .with_num_estimators(35)
                .with_entropy_threshold(0.3)
                .fit(&split.train, 14)?;
            let v2 = fleet.deploy("edge-hmd", stricter)?;
            println!(
                "--- hot swap: {} now serves as v{v2} on every replica ---",
                fleet.detector_name("edge-hmd")?
            );
        }

        // One burst = one edge-device session = BURST keyed score() calls.
        // Key affinity pins the session to one replica, so the session's
        // tile drains inline when its BURST-th request lands.
        let session_key = burst as u64;
        let mut in_flight = Vec::new();
        for slot in 0..BURST {
            let step = burst * BURST + slot;
            // every third signature comes from a zero-day application
            let (app, is_unknown) = if step % 3 == 2 {
                (&unknown_apps[step % unknown_apps.len()], true)
            } else {
                (&known_apps[step % known_apps.len()], false)
            };
            let signature = builder.simulate_signature(app, &mut rng);
            let ticket = fleet.score_keyed("edge-hmd", session_key, &signature)?;
            in_flight.push((app.name.clone(), app.label, is_unknown, ticket));
        }
        for (name, label, is_unknown, ticket) in in_flight {
            let scored = ticket.wait()?;
            let decision = match scored.report.decision {
                Decision::Accept(label) => format!("accept ({label})"),
                Decision::Escalate => "ESCALATE to analyst".to_string(),
            };
            if is_unknown {
                unknown_seen += 1;
                if scored.report.decision.is_escalation() {
                    escalations_on_unknown += 1;
                }
            }
            println!(
                "{:<30} {:>3} {:>3} {:>9} {:>8.3} {:>9.2}   {}",
                name,
                format!("v{}", scored.version),
                format!("r{}", scored.replica),
                label.to_string(),
                scored.report.prediction.entropy,
                scored.report.prediction.malware_vote_fraction,
                decision
            );
        }
    }

    // The dashboard view: per-replica statistics and the merged endpoint
    // view a fleet-wide alerting rule would read.
    let stats = fleet.stats("edge-hmd")?;
    println!(
        "\nendpoint edge-hmd: {} windows, {} accepted ({} malware / {} benign), {} escalated",
        stats.windows,
        stats.accepted,
        stats.accepted_malware,
        stats.accepted_benign,
        stats.escalated
    );
    println!(
        "entropy: mean {:.3}, min {:.3}, max {:.3}; escalation rate {:.1}%",
        stats.mean_entropy(),
        stats.min_entropy,
        stats.max_entropy,
        100.0 * stats.escalation_rate()
    );
    for (replica, rs) in fleet.replica_stats("edge-hmd")?.iter().enumerate() {
        println!(
            "  replica {replica}: {} windows, {:.1}% escalated",
            rs.windows,
            100.0 * rs.escalation_rate()
        );
    }
    println!("zero-day signatures escalated: {escalations_on_unknown}/{unknown_seen}");

    // Operations can always back out: restore the previous version on
    // every replica at once.
    let restored = fleet.rollback("edge-hmd")?;
    println!(
        "rolled back to v{restored}: {} serves again on all {} replicas",
        fleet.detector_name("edge-hmd")?,
        fleet.replicas("edge-hmd")?
    );
    Ok(())
}
