//! Online monitoring through the serving fleet: the deployment scenario the
//! paper motivates, served the way a production DAQ central unit would.
//!
//! A trusted HMD is described by a `DetectorConfig`, trained offline, saved,
//! and the *restored* copy — as it would be on the deployment host — is
//! published as a named, versioned endpoint of a `DetectorFleet`. The
//! monitored stream submits one signature at a time with `fleet.score`;
//! the fleet micro-batches those single-row requests into per-endpoint
//! tiles that drain through the detector's flat-engine batch path (at
//! `max_batch` rows or after `max_wait`), and each ordered `Ticket` resolves
//! to a version-stamped report that is bit-identical to direct scoring.
//!
//! Known applications are classified confidently; when a zero-day (an
//! application family the detector has never seen) starts running, its
//! signatures arrive with high entropy and the detector escalates them for
//! forensics instead of silently guessing. Mid-stream the example hot-swaps
//! a stricter model version — in-flight requests finish on the version that
//! accepted them, and every printed report carries the version that scored
//! it — then rolls back. The per-endpoint statistics a dashboard would
//! display now live behind the fleet (`fleet.stats`), not in a borrowed
//! per-tenant `MonitorSession`.
//!
//! ```text
//! cargo run --release --example online_monitor
//! ```

use hmd::core::detector::{load, save};
use hmd::dvfs::apps::AppCatalog;
use hmd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::time::Duration;

/// Windows per micro-batch burst: matches the fleet's `max_batch`, so each
/// burst drains as one tile through the batch hot path.
const BURST: usize = 3;

fn main() -> Result<(), Box<dyn Error>> {
    let builder = DvfsCorpusBuilder::new()
        .with_samples_per_app(20)
        .with_trace_len(384);
    let split = builder.build_split(55)?;

    // Train offline, persist, and deploy the restored pipeline — the
    // save/load round trip is exactly what a model registry would do.
    let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
        .with_num_estimators(25)
        .with_entropy_threshold(0.4);
    let trained = config.fit(&split.train, 13)?;
    let document = save(trained.as_ref())?;

    let fleet = DetectorFleet::with_policy(FlushPolicy::new(BURST, Duration::from_millis(5)));
    let v1 = fleet.deploy("edge-hmd", load(&document)?);
    println!(
        "deployed {} as edge-hmd v{v1} ({} byte model document)\n",
        fleet.detector_name("edge-hmd")?,
        document.len()
    );

    // Simulate an online stream: alternate known applications with bursts of
    // a zero-day (held-out) application, generating each signature on the fly.
    let catalog = AppCatalog::standard();
    let known_apps: Vec<_> = catalog.known_apps().into_iter().cloned().collect();
    let unknown_apps: Vec<_> = catalog.unknown_apps().into_iter().cloned().collect();
    let mut rng = StdRng::seed_from_u64(99);

    println!(
        "{:<30} {:>3} {:>9} {:>8} {:>9}   decision",
        "application", "ver", "class", "entropy", "P(malware)"
    );
    let mut escalations_on_unknown = 0usize;
    let mut unknown_seen = 0usize;
    for burst in 0..10 {
        // Halfway through the stream, hot-swap a stricter version: a larger
        // ensemble with a tighter escalation threshold. Requests already
        // queued finish on v1; every later report is stamped v2.
        if burst == 5 {
            let stricter = DetectorConfig::trusted(DetectorBackend::decision_tree())
                .with_num_estimators(35)
                .with_entropy_threshold(0.3)
                .fit(&split.train, 14)?;
            let v2 = fleet.deploy("edge-hmd", stricter);
            println!(
                "--- hot swap: {} now serves as v{v2} ---",
                fleet.detector_name("edge-hmd")?
            );
        }

        // One burst = BURST single-row score() calls; the tile drains through
        // detect_rows when the BURST-th request lands.
        let mut in_flight = Vec::new();
        for slot in 0..BURST {
            let step = burst * BURST + slot;
            // every third signature comes from a zero-day application
            let (app, is_unknown) = if step % 3 == 2 {
                (&unknown_apps[step % unknown_apps.len()], true)
            } else {
                (&known_apps[step % known_apps.len()], false)
            };
            let signature = builder.simulate_signature(app, &mut rng);
            let ticket = fleet.score("edge-hmd", &signature)?;
            in_flight.push((app.name.clone(), app.label, is_unknown, ticket));
        }
        for (name, label, is_unknown, ticket) in in_flight {
            let scored = ticket.wait()?;
            let decision = match scored.report.decision {
                Decision::Accept(label) => format!("accept ({label})"),
                Decision::Escalate => "ESCALATE to analyst".to_string(),
            };
            if is_unknown {
                unknown_seen += 1;
                if scored.report.decision.is_escalation() {
                    escalations_on_unknown += 1;
                }
            }
            println!(
                "{:<30} {:>3} {:>9} {:>8.3} {:>9.2}   {}",
                name,
                format!("v{}", scored.version),
                label.to_string(),
                scored.report.prediction.entropy,
                scored.report.prediction.malware_vote_fraction,
                decision
            );
        }
    }

    let stats = fleet.stats("edge-hmd")?;
    println!(
        "\nendpoint edge-hmd: {} windows, {} accepted ({} malware / {} benign), {} escalated",
        stats.windows,
        stats.accepted,
        stats.accepted_malware,
        stats.accepted_benign,
        stats.escalated
    );
    println!(
        "entropy: mean {:.3}, min {:.3}, max {:.3}; escalation rate {:.1}%",
        stats.mean_entropy(),
        stats.min_entropy,
        stats.max_entropy,
        100.0 * stats.escalation_rate()
    );
    println!("zero-day signatures escalated: {escalations_on_unknown}/{unknown_seen}");

    // Operations can always back out: restore the previous version.
    let restored = fleet.rollback("edge-hmd")?;
    println!(
        "rolled back to v{restored}: {} serves again",
        fleet.detector_name("edge-hmd")?
    );
    Ok(())
}
