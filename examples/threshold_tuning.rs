//! Tuning the rejection threshold of a trusted HMD.
//!
//! The entropy threshold trades analyst workload (how much gets escalated)
//! against detection quality (F1 of the accepted predictions). This example
//! sweeps the threshold on a validation split, picks the smallest threshold
//! whose known-data rejection stays under a budget, and deploys the detector
//! with the tuned policy.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use hmd::core::rejection::RejectionPolicy;
use hmd::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let split = DvfsCorpusBuilder::new()
        .with_samples_per_app(24)
        .with_trace_len(384)
        .build_split(33)?;

    // Train on the training split. Tuning needs the concrete pipeline (to
    // swap its rejection policy in place); deployment below goes through the
    // unified `Detector` API.
    let mut hmd = TrustedHmdBuilder::new(DecisionTreeParams::new())
        .with_num_estimators(25)
        .fit(&split.train, 9)?;

    // Sweep thresholds on the known test split (acts as validation here).
    let known = hmd.predict_dataset(&split.test_known)?;
    let unknown = hmd.predict_dataset(&split.unknown)?;
    let thresholds = threshold_grid(0.0, 1.0, 0.05);
    let curve = RejectionCurve::sweep("RF", &known, &unknown, &thresholds);

    println!(
        "{:>9} {:>12} {:>14}",
        "threshold", "known rej %", "unknown rej %"
    );
    for p in &curve.points {
        println!(
            "{:>9.2} {:>12.1} {:>14.1}",
            p.threshold, p.known_rejected_pct, p.unknown_rejected_pct
        );
    }

    // Budget: escalate at most 5% of known workloads.
    let budget_pct = 5.0;
    let operating_point = curve
        .operating_point(budget_pct)
        .expect("a feasible threshold exists for this corpus");
    println!(
        "\nchosen threshold {:.2}: escalates {:.1}% of known and {:.1}% of unknown workloads",
        operating_point.threshold,
        operating_point.known_rejected_pct,
        operating_point.unknown_rejected_pct
    );

    // Deploy the tuned policy behind the unified Detector API and measure
    // the accepted-F1 on known + unknown through the batch hot path.
    hmd.set_policy(RejectionPolicy::new(operating_point.threshold));
    let detector: &dyn Detector = &hmd;
    println!(
        "deployed {} with entropy threshold {:.2}",
        detector.name(),
        detector.entropy_threshold()
    );
    let combined = split.test_known.concat(&split.unknown)?;
    let predictions =
        hmd::core::detector::predictions(&detector.detect_batch(combined.features())?);
    let f1_curve = F1Curve::sweep(
        "tuned",
        &predictions,
        combined.labels(),
        &[operating_point.threshold, 10.0],
    );
    println!(
        "accepted-F1 with tuned policy: {:.3}   (accept-everything: {:.3})",
        f1_curve.points[0].f1, f1_curve.points[1].f1
    );
    Ok(())
}
