//! Cross-crate integration tests exercised through the facade crate: the full
//! pipeline from simulated hardware signatures to accept/escalate decisions.

use hmd::core::trusted::Decision;
use hmd::dvfs::apps::AppCatalog;
use hmd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dvfs_pipeline_classifies_known_apps_and_flags_zero_days() {
    let builder = DvfsCorpusBuilder::new()
        .with_samples_per_app(18)
        .with_trace_len(320);
    let split = builder.build_split(101).expect("corpus");
    let hmd = TrustedHmdBuilder::new(DecisionTreeParams::new())
        .with_num_estimators(21)
        .with_entropy_threshold(0.45)
        .fit(&split.train, 17)
        .expect("training");

    // Known test set: good F1 and mostly accepted.
    let known = hmd
        .predict_dataset(&split.test_known)
        .expect("known predictions");
    let labels: Vec<Label> = known.iter().map(|p| p.label).collect();
    assert!(
        f1_score(split.test_known.labels(), &labels) > 0.85,
        "known-test F1 too low"
    );
    let accepted =
        known.iter().filter(|p| !hmd.policy().rejects(p)).count() as f64 / known.len() as f64;
    assert!(accepted > 0.75, "only {accepted:.2} of known data accepted");

    // Fresh online signatures from an unknown app should mostly escalate.
    let catalog = AppCatalog::standard();
    let zero_day = catalog.unknown_apps()[0].clone();
    let mut rng = StdRng::seed_from_u64(7);
    let mut escalated = 0;
    let trials = 20;
    for _ in 0..trials {
        let signature = builder.simulate_signature(&zero_day, &mut rng);
        let report = hmd.detect(&signature).expect("detection");
        if matches!(report.decision, Decision::Escalate) {
            escalated += 1;
        }
    }
    assert!(
        escalated * 2 >= trials,
        "zero-day app escalated only {escalated}/{trials} times"
    );
}

#[test]
fn hpc_pipeline_reports_high_data_uncertainty() {
    let split = HpcCorpusBuilder::new()
        .with_samples_per_app(30)
        .build_split(103)
        .expect("corpus");
    let hmd = TrustedHmdBuilder::new(DecisionTreeParams::new())
        .with_num_estimators(21)
        .fit(&split.train, 19)
        .expect("training");

    let known = hmd
        .predict_dataset(&split.test_known)
        .expect("known predictions");
    let unknown = hmd
        .predict_dataset(&split.unknown)
        .expect("unknown predictions");
    let pair = KnownUnknownEntropy::new(
        &known.iter().map(|p| p.entropy).collect::<Vec<_>>(),
        &unknown.iter().map(|p| p.entropy).collect::<Vec<_>>(),
    );
    // The class overlap makes even known data uncertain, and the unknowns do
    // not separate the way they do on DVFS.
    assert!(
        pair.known.mean > 0.05,
        "known mean entropy {:.3}",
        pair.known.mean
    );
    assert!(
        pair.median_gap() < 0.5,
        "HPC known/unknown gap unexpectedly large: {:.3}",
        pair.median_gap()
    );
}

#[test]
fn bagging_works_across_all_three_base_learners_on_dvfs() {
    let split = DvfsCorpusBuilder::new()
        .with_samples_per_app(12)
        .with_trace_len(256)
        .build_split(105)
        .expect("corpus");

    let rf = TrustedHmdBuilder::new(RandomForestParams::new().with_num_trees(7))
        .with_num_estimators(9)
        .fit(&split.train, 1)
        .expect("RF ensemble");
    let lr = TrustedHmdBuilder::new(LogisticRegressionParams::new().with_epochs(120))
        .with_num_estimators(9)
        .fit(&split.train, 2)
        .expect("LR ensemble");
    let svm = TrustedHmdBuilder::new(LinearSvmParams::new().with_epochs(30))
        .with_num_estimators(9)
        .fit(&split.train, 3)
        .expect("SVM ensemble");

    for (name, hmd_f1) in [
        ("RF", pipeline_f1(&rf, &split.test_known)),
        ("LR", pipeline_f1(&lr, &split.test_known)),
        ("SVM", pipeline_f1(&svm, &split.test_known)),
    ] {
        assert!(hmd_f1 > 0.6, "{name} known-test F1 {hmd_f1:.3} too low");
    }
}

fn pipeline_f1<M: Classifier>(hmd: &TrustedHmd<M>, test: &Dataset) -> f64 {
    let predictions = hmd.predict_dataset(test).expect("predictions");
    let labels: Vec<Label> = predictions.iter().map(|p| p.label).collect();
    f1_score(test.labels(), &labels)
}

#[test]
fn pca_front_end_preserves_detection_quality_on_dvfs() {
    let split = DvfsCorpusBuilder::new()
        .with_samples_per_app(15)
        .with_trace_len(256)
        .build_split(107)
        .expect("corpus");
    let plain = TrustedHmdBuilder::new(DecisionTreeParams::new())
        .with_num_estimators(11)
        .fit(&split.train, 5)
        .expect("plain pipeline");
    let reduced = TrustedHmdBuilder::new(DecisionTreeParams::new())
        .with_num_estimators(11)
        .with_pca(8)
        .fit(&split.train, 5)
        .expect("PCA pipeline");
    let f1_plain = pipeline_f1(&plain, &split.test_known);
    let f1_pca = pipeline_f1(&reduced, &split.test_known);
    assert!(f1_plain > 0.8, "plain F1 {f1_plain:.3}");
    assert!(
        f1_pca > f1_plain - 0.2,
        "PCA front end degrades F1 too much: {f1_pca:.3} vs {f1_plain:.3}"
    );
}

#[test]
fn detector_api_serves_saved_pipeline_in_an_online_session() {
    use hmd::core::detector::{load, save};

    let builder = DvfsCorpusBuilder::new()
        .with_samples_per_app(15)
        .with_trace_len(256);
    let split = builder.build_split(111).expect("corpus");

    // Config → fit → save → load, all through the facade.
    let detector = DetectorConfig::trusted(DetectorBackend::decision_tree())
        .with_num_estimators(15)
        .with_entropy_threshold(0.45)
        .fit(&split.train, 29)
        .expect("training");
    let served = load(&save(detector.as_ref()).expect("save")).expect("load");
    assert_eq!(served.name(), detector.name());

    // The restored pipeline matches the original on the whole unknown set.
    let direct = detector
        .detect_batch(split.unknown.features())
        .expect("batch");
    let restored = served
        .detect_batch(split.unknown.features())
        .expect("batch");
    assert_eq!(direct, restored);

    // And it drives an online monitoring session: a zero-day stream should
    // mostly escalate, and the session statistics must account for every
    // window.
    let catalog = AppCatalog::standard();
    let zero_day = catalog.unknown_apps()[0].clone();
    let mut rng = StdRng::seed_from_u64(13);
    let mut session = MonitorSession::new(served.as_ref());
    for _ in 0..20 {
        let signature = builder.simulate_signature(&zero_day, &mut rng);
        session.observe(&signature).expect("observation");
    }
    let stats = session.stats();
    assert_eq!(stats.windows, 20);
    assert_eq!(stats.accepted + stats.escalated, 20);
    assert!(
        stats.escalation_rate() >= 0.5,
        "zero-day stream escalated only {:.0}%",
        100.0 * stats.escalation_rate()
    );
    assert!(
        stats.mean_entropy() > 0.2,
        "mean entropy {:.3}",
        stats.mean_entropy()
    );
}

#[test]
fn untrusted_baseline_matches_trusted_labels_on_known_data() {
    let split = DvfsCorpusBuilder::new()
        .with_samples_per_app(12)
        .with_trace_len(256)
        .build_split(109)
        .expect("corpus");
    let builder = TrustedHmdBuilder::new(DecisionTreeParams::new()).with_num_estimators(15);
    let trusted = builder.fit(&split.train, 23).expect("trusted");
    let untrusted = builder.fit_untrusted(&split.train, 23).expect("untrusted");

    let trusted_labels: Vec<Label> = trusted
        .predict_dataset(&split.test_known)
        .expect("trusted predictions")
        .iter()
        .map(|p| p.label)
        .collect();
    let untrusted_labels = untrusted
        .predict_dataset(&split.test_known)
        .expect("untrusted predictions");
    let agreement = trusted_labels
        .iter()
        .zip(&untrusted_labels)
        .filter(|(a, b)| a == b)
        .count() as f64
        / trusted_labels.len() as f64;
    assert!(
        agreement > 0.8,
        "trusted and untrusted pipelines should mostly agree on known data, agreement {agreement:.2}"
    );
}
